#include "serve/search_service.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <exception>

#include "common/build_info.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "registry/index_factory.h"

namespace juno {

const char *
rejectReasonName(RejectReason reason)
{
    switch (reason) {
    case RejectReason::kNone:
        return "none";
    case RejectReason::kQueueFull:
        return "queue_full";
    case RejectReason::kStopped:
        return "stopped";
    case RejectReason::kExpired:
        return "expired";
    }
    return "unknown";
}

RejectedError::RejectedError(RejectReason reason)
    : std::runtime_error(std::string("request rejected: ") +
                         rejectReasonName(reason)),
      reason_(reason)
{
}

namespace {

/** A valid future already holding the typed rejection. */
std::future<ResultList>
rejectedFuture(RejectReason reason, RejectReason *out)
{
    if (out != nullptr)
        *out = reason;
    std::promise<ResultList> promise;
    std::future<ResultList> future = promise.get_future();
    promise.set_exception(
        std::make_exception_ptr(RejectedError(reason)));
    return future;
}

double
micros(std::chrono::steady_clock::duration d)
{
    return std::chrono::duration<double, std::micro>(d).count();
}

std::unique_ptr<AnnIndex>
requireIndex(std::unique_ptr<AnnIndex> index)
{
    JUNO_REQUIRE(index != nullptr, "warm start needs an index");
    return index;
}

TracerConfig
tracerConfig(const ServiceConfig &config)
{
    TracerConfig t;
    t.sample_rate = config.trace_sample;
    t.slow_us = config.slow_trace_us;
    return t;
}

void
validateConfig(const ServiceConfig &config)
{
    JUNO_REQUIRE(config.max_batch > 0,
                 "max_batch must be positive (1 = no batching)");
    JUNO_REQUIRE(config.linger.count() >= 0, "linger must be >= 0");
    JUNO_REQUIRE(config.dispatchers > 0, "need at least one dispatcher");
    JUNO_REQUIRE(config.trace_sample >= 0.0 && config.trace_sample <= 1.0,
                 "trace_sample must be in [0, 1]");
    JUNO_REQUIRE(config.slow_trace_us >= 0.0,
                 "slow_trace_us must be >= 0");
    JUNO_REQUIRE(config.stats_every_s >= 0.0,
                 "stats_every_s must be >= 0");
    JUNO_REQUIRE(config.default_deadline_ms >= 0.0,
                 "default_deadline_ms must be >= 0 (0 = no deadline)");
}

HistogramSummary
toHistogramSummary(const LatencySummary &s)
{
    HistogramSummary out;
    out.count = s.count;
    out.mean = s.mean;
    out.p50 = s.p50;
    out.p95 = s.p95;
    out.p99 = s.p99;
    out.max = s.max;
    return out;
}

} // namespace

SearchService::SearchService(AnnIndex &index, ServiceConfig config)
    : index_(index), config_(config), queue_(config.queue_capacity),
      tracer_(tracerConfig(config))
{
    validateConfig(config_);
    if (config_.degradation.enabled)
        policy_ =
            std::make_unique<DegradationPolicy>(config_.degradation);
    live_ = dynamic_cast<LiveIndex *>(&index_);
    if (live_ != nullptr && live_->liveConfig().tracer == nullptr)
        live_->setTracer(&tracer_);
}

SearchService::SearchService(std::unique_ptr<AnnIndex> index,
                             ServiceConfig config)
    : owned_index_(requireIndex(std::move(index))),
      index_(*owned_index_), config_(config),
      queue_(config.queue_capacity), tracer_(tracerConfig(config))
{
    validateConfig(config_);
    if (config_.degradation.enabled)
        policy_ =
            std::make_unique<DegradationPolicy>(config_.degradation);
    live_ = dynamic_cast<LiveIndex *>(&index_);
    if (live_ != nullptr && live_->liveConfig().tracer == nullptr)
        live_->setTracer(&tracer_);
}

SearchService::SearchService(const std::string &snapshot_path,
                             ServiceConfig config,
                             const SnapshotOptions &options)
    : SearchService(openIndex(snapshot_path, options), config)
{
}

SearchService::~SearchService()
{
    stop();
}

void
SearchService::start()
{
    MutexLock lock(lifecycle_mutex_);
    JUNO_REQUIRE(state_ == State::kIdle,
                 "SearchService is one-shot: start() called on a "
                 "running or stopped service");
    // Resolve the out-of-core budget before any query runs: explicit
    // config wins, then JUNO_MEM_BUDGET, else the index is left as
    // configured. setMemoryBudget returning false (index type without
    // an IO-aware path) just means serving stays pure-mmap.
    std::int64_t budget = config_.memory_budget_bytes;
    if (budget < 0)
        budget = HotListCache::budgetFromEnv();
    if (budget >= 0)
        index_.setMemoryBudget(budget);
    base_usage_ = readResourceUsage();
    start_time_ = Clock::now();
    state_ = State::kRunning;
    running_.store(true);
    dispatchers_.reserve(static_cast<std::size_t>(config_.dispatchers));
    for (int i = 0; i < config_.dispatchers; ++i)
        dispatchers_.emplace_back([this] { dispatchLoop(); });
    if (config_.metrics)
        registerMetrics();
    if (config_.stats_every_s > 0.0) {
        MutexLock rlock(reporter_mutex_);
        reporter_stop_ = false;
        reporter_ = std::thread([this] { reporterLoop(); });
    }
}

int
SearchService::degradationTier() const
{
    return policy_ != nullptr ? policy_->tier() : 0;
}

MutateStatus
SearchService::insert(const float *vec, idx_t id)
{
    MutateStatus status;
    if (!running_.load())
        status = MutateStatus::kStopped;
    else if (live_ == nullptr)
        status = MutateStatus::kUnsupported;
    else
        status = live_->insert(vec, id);
    stats_.recordLiveOp(LiveOp::kInsert, status == MutateStatus::kOk);
    return status;
}

MutateStatus
SearchService::remove(idx_t id)
{
    MutateStatus status;
    if (!running_.load())
        status = MutateStatus::kStopped;
    else if (live_ == nullptr)
        status = MutateStatus::kUnsupported;
    else
        status = live_->remove(id);
    stats_.recordLiveOp(LiveOp::kRemove, status == MutateStatus::kOk);
    return status;
}

MutateStatus
SearchService::upsert(const float *vec, idx_t id)
{
    MutateStatus status;
    if (!running_.load())
        status = MutateStatus::kStopped;
    else if (live_ == nullptr)
        status = MutateStatus::kUnsupported;
    else
        status = live_->upsert(vec, id);
    stats_.recordLiveOp(LiveOp::kUpsert, status == MutateStatus::kOk);
    return status;
}

LiveStats
SearchService::liveStats() const
{
    return live_ != nullptr ? live_->liveStats() : LiveStats{};
}

SearchService::Clock::time_point
SearchService::defaultDeadline() const
{
    if (config_.default_deadline_ms <= 0.0)
        return kNoDeadline;
    return Clock::now() +
           std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double, std::milli>(
                   config_.default_deadline_ms));
}

ServiceStats::Snapshot
SearchService::snapshot() const
{
    ServiceStats::Snapshot snap = stats_.snapshot();
    snap.degradation_tier = degradationTier();
    if (const auto cache = index_.hotListCache())
        snap.cache = cache->counters();
    const ResourceUsage now = readResourceUsage();
    // base_usage_ is written by start(); reading it under the
    // lifecycle lock keeps a snapshot racing with start() coherent.
    ResourceUsage base;
    {
        MutexLock lock(lifecycle_mutex_);
        base = base_usage_;
    }
    snap.usage.rss_bytes = now.rss_bytes;
    snap.usage.major_faults = now.major_faults - base.major_faults;
    snap.usage.minor_faults = now.minor_faults - base.minor_faults;
    if (live_ != nullptr) {
        snap.live_enabled = true;
        snap.live = live_->liveStats();
    }
    return snap;
}

void
SearchService::stop()
{
    bool drained = false;
    {
        // Joining under the lifecycle lock makes concurrent stop()
        // calls all block until the drain completes (dispatchers never
        // touch this lock, so no deadlock).
        MutexLock lock(lifecycle_mutex_);
        if (state_ != State::kStopped) {
            running_.store(false);
            queue_.close(); // dispatchers drain the backlog, then exit
            for (auto &d : dispatchers_)
                d.join();
            dispatchers_.clear();
            state_ = State::kStopped;
            drained = true;
        }
    }
    // The reporter calls snapshot(), which takes the lifecycle lock —
    // joining it outside that lock is what makes this deadlock-free.
    stopReporter();
    // One final recorder tick after the drain so the last JSONL line
    // and summary reflect every completed request. Only the stop()
    // that performed the drain emits it (idempotence for concurrent
    // stops and the destructor's implicit call).
    if (drained && config_.stats_every_s > 0.0)
        recorderTick(true);
}

void
SearchService::stopReporter()
{
    std::thread reporter;
    {
        MutexLock lock(reporter_mutex_);
        reporter_stop_ = true;
        reporter = std::move(reporter_);
    }
    reporter_cv_.notify_all();
    if (reporter.joinable())
        reporter.join();
}

void
SearchService::reporterLoop()
{
    const auto period = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(config_.stats_every_s));
    while (true) {
        {
            CvLock lock(reporter_mutex_);
            const auto deadline = Clock::now() + period;
            while (!reporter_stop_ && Clock::now() < deadline)
                reporter_cv_.wait_until(lock.native(), deadline);
            if (reporter_stop_)
                return; // stop() emits the final tick after the drain
        }
        recorderTick(false);
    }
}

void
SearchService::recorderTick(bool final_tick)
{
    const ServiceStats::Snapshot snap = snapshot();
    const double uptime =
        std::chrono::duration<double>(Clock::now() - start_time_).count();
    const double hit_pct =
        snap.cache.lookups == 0
            ? 0.0
            : 100.0 * static_cast<double>(snap.cache.hits) /
                  static_cast<double>(snap.cache.lookups);
    std::fprintf(
        stderr,
        "[juno.serve]%s up=%.1fs completed=%llu failed=%llu "
        "rejected=%llu shed=%llu degraded=%llu tier=%d batches=%llu "
        "mean_batch=%.1f p50=%.0fus p99=%.0fus rss=%.1fMiB "
        "cache_hit=%.1f%%\n",
        final_tick ? " final" : "", uptime,
        static_cast<unsigned long long>(snap.completed),
        static_cast<unsigned long long>(snap.failed),
        static_cast<unsigned long long>(snap.rejected_full +
                                        snap.rejected_stopped),
        static_cast<unsigned long long>(snap.rejected_expired +
                                        snap.expired),
        static_cast<unsigned long long>(snap.degraded),
        snap.degradation_tier,
        static_cast<unsigned long long>(snap.batches), snap.mean_batch,
        snap.total_us.p50, snap.total_us.p99,
        static_cast<double>(snap.usage.rss_bytes) / (1024.0 * 1024.0),
        hit_pct);
    if (config_.metrics_jsonl.empty())
        return;
    std::FILE *f = std::fopen(config_.metrics_jsonl.c_str(), "a");
    if (f == nullptr) {
        warn("flight recorder cannot append to " + config_.metrics_jsonl);
        return;
    }
    const auto ts_unix =
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    std::string line = "{\"ts_unix\":" + std::to_string(ts_unix);
    char buf[64];
    std::snprintf(buf, sizeof(buf), ",\"uptime_s\":%.3f", uptime);
    line += buf;
    line += final_tick ? ",\"final\":true" : ",\"final\":false";
    line += ",\"metrics\":" + registry().renderJson() + "}\n";
    std::fwrite(line.data(), 1, line.size(), f);
    std::fclose(f);
}

MetricsRegistry &
SearchService::registry() const
{
    return config_.registry != nullptr ? *config_.registry
                                       : MetricsRegistry::global();
}

void
SearchService::registerMetrics()
{
    MetricsRegistry &reg = registry();
    auto &regs = metric_regs_;
    regs.push_back(reg.counterCallback(
        "juno_serve_submitted_total", "Requests accepted into the queue",
        [this] { return stats_.submitted(); }));
    regs.push_back(reg.counterCallback(
        "juno_serve_completed_total", "Futures fulfilled with a value",
        [this] { return stats_.completed(); }));
    regs.push_back(reg.counterCallback(
        "juno_serve_failed_total", "Futures fulfilled with an exception",
        [this] { return stats_.failed(); }));
    regs.push_back(reg.counterCallback(
        "juno_serve_rejected_full_total", "Rejected: queue at capacity",
        [this] { return stats_.rejectedFull(); }));
    regs.push_back(reg.counterCallback(
        "juno_serve_rejected_stopped_total", "Rejected: not running",
        [this] { return stats_.rejectedStopped(); }));
    // Shed work, one family labeled by reason: the three door
    // rejections plus doomed work shed at dequeue.
    const char *shed_help = "Requests shed, by reason";
    regs.push_back(reg.counterCallback(
        "juno_serve_shed_total", {{"reason", "queue_full"}}, shed_help,
        [this] { return stats_.rejectedFull(); }));
    regs.push_back(reg.counterCallback(
        "juno_serve_shed_total", {{"reason", "stopped"}}, shed_help,
        [this] { return stats_.rejectedStopped(); }));
    regs.push_back(reg.counterCallback(
        "juno_serve_shed_total", {{"reason", "expired_submit"}}, shed_help,
        [this] { return stats_.rejectedExpired(); }));
    regs.push_back(reg.counterCallback(
        "juno_serve_shed_total", {{"reason", "expired_queue"}}, shed_help,
        [this] { return stats_.expired(); }));
    regs.push_back(reg.counterCallback(
        "juno_serve_expired_total",
        "Accepted requests shed at dequeue past their deadline",
        [this] { return stats_.expired(); }));
    regs.push_back(reg.counterCallback(
        "juno_serve_degraded_total",
        "Value-completed requests flagged degraded",
        [this] { return stats_.degraded(); }));
    regs.push_back(reg.counterCallback(
        "juno_serve_degraded_batches",
        "Batches dispatched under reduced quality",
        [this] { return stats_.degradedBatches(); }));
    regs.push_back(reg.gaugeCallback(
        "juno_serve_degradation_tier",
        "Current degradation tier (0 = full quality)",
        [this] { return static_cast<double>(degradationTier()); }));
    regs.push_back(reg.counterCallback(
        "juno_serve_batches_total", "Dispatched engine batches",
        [this] { return stats_.batches(); }));
    using Component = ServiceStats::Component;
    const std::pair<const char *, Component> components[] = {
        {"juno_serve_queue_us", Component::kQueue},
        {"juno_serve_batch_us", Component::kBatch},
        {"juno_serve_search_us", Component::kSearch},
        {"juno_serve_total_us", Component::kTotal},
    };
    for (const auto &[name, component] : components) {
        regs.push_back(reg.summaryCallback(
            name, "Request latency component (microseconds)",
            [this, component = component] {
                return toHistogramSummary(
                    stats_.componentSummary(component));
            }));
    }
    // Hot-list cache counters re-export through the registry; all
    // zero when the served index has no cache attached.
    auto cache_counters = [this]() -> HotListCache::Counters {
        if (const auto cache = index_.hotListCache())
            return cache->counters();
        return {};
    };
    regs.push_back(reg.counterCallback(
        "juno_cache_lookups_total", "Hot-list cache lookups",
        [cache_counters] { return cache_counters().lookups; }));
    regs.push_back(reg.counterCallback(
        "juno_cache_hits_total", "Hot-list cache hits",
        [cache_counters] { return cache_counters().hits; }));
    regs.push_back(reg.counterCallback(
        "juno_cache_misses_total", "Hot-list cache misses",
        [cache_counters] { return cache_counters().misses; }));
    regs.push_back(reg.counterCallback(
        "juno_cache_admitted_total", "Lists admitted to the cache",
        [cache_counters] { return cache_counters().admitted; }));
    regs.push_back(reg.counterCallback(
        "juno_cache_evicted_total", "Lists evicted from the cache",
        [cache_counters] { return cache_counters().evicted; }));
    regs.push_back(reg.gaugeCallback(
        "juno_cache_pinned_bytes", "Bytes pinned by the hot-list cache",
        [cache_counters] {
            return static_cast<double>(cache_counters().pinned_bytes);
        }));
    regs.push_back(reg.gaugeCallback(
        "juno_cache_resident_lists", "Lists resident in the cache",
        [cache_counters] {
            return static_cast<double>(cache_counters().resident_lists);
        }));
    // Process health (absolute readings; Prometheus-side rate() turns
    // the fault counters into fault rates).
    regs.push_back(reg.gaugeCallback(
        "juno_process_rss_bytes", "Current resident set size",
        [] { return static_cast<double>(readResourceUsage().rss_bytes); }));
    regs.push_back(reg.counterCallback(
        "juno_process_major_faults_total", "Major page faults (paid IO)",
        [] { return readResourceUsage().major_faults; }));
    regs.push_back(reg.counterCallback(
        "juno_process_minor_faults_total", "Minor page faults",
        [] { return readResourceUsage().minor_faults; }));
    // Tracing health: how many traces were captured/dropped.
    regs.push_back(reg.counterCallback(
        "juno_trace_sampled_total", "Sampled traces retained",
        [this] { return tracer_.sampledCount(); }));
    regs.push_back(reg.counterCallback(
        "juno_trace_slow_total", "Slow-query traces captured",
        [this] { return tracer_.slowCount(); }));
    regs.push_back(reg.counterCallback(
        "juno_trace_dropped_total", "Sampled traces dropped (ring full)",
        [this] { return tracer_.droppedCount(); }));
    // Live-mutation metrics: only registered when the served index is
    // a LiveIndex, so an immutable service's exposition is unchanged.
    if (live_ != nullptr) {
        const char *ops_help = "Applied live mutations, by op";
        regs.push_back(reg.counterCallback(
            "juno_live_ops_total", {{"op", "insert"}}, ops_help,
            [this] { return stats_.liveInserts(); }));
        regs.push_back(reg.counterCallback(
            "juno_live_ops_total", {{"op", "remove"}}, ops_help,
            [this] { return stats_.liveRemoves(); }));
        regs.push_back(reg.counterCallback(
            "juno_live_ops_total", {{"op", "upsert"}}, ops_help,
            [this] { return stats_.liveUpserts(); }));
        regs.push_back(reg.counterCallback(
            "juno_live_rejected_total", "Refused live mutations",
            [this] { return stats_.liveRejected(); }));
        regs.push_back(reg.gaugeCallback(
            "juno_live_fresh_rows",
            "Live rows buffered and awaiting merge", [this] {
                return static_cast<double>(
                    live_->liveStats().fresh_rows);
            }));
        regs.push_back(reg.gaugeCallback(
            "juno_live_tombstones",
            "Dead rows awaiting compaction", [this] {
                return static_cast<double>(
                    live_->liveStats().tombstones);
            }));
        regs.push_back(reg.gaugeCallback(
            "juno_live_generation", "Current snapshot generation",
            [this] {
                return static_cast<double>(live_->generation());
            }));
        regs.push_back(reg.counterCallback(
            "juno_live_generations_published_total",
            "Merged generations swapped in for readers",
            [this] { return live_->liveStats().generations_published; }));
        regs.push_back(reg.counterCallback(
            "juno_live_merges_total", "Completed merge cycles",
            [this] { return live_->liveStats().merges; }));
    }
    regs.push_back(reg.info("juno_build_info", "Build provenance",
                            buildInfoLabels()));
}

std::future<ResultList>
SearchService::submit(const float *query, idx_t k,
                      RejectReason *rejected)
{
    return submit(query, k, defaultDeadline(), rejected);
}

std::future<ResultList>
SearchService::submit(const float *query, idx_t k,
                      Clock::time_point deadline, RejectReason *rejected)
{
    JUNO_REQUIRE(k >= 0, "k must be non-negative");
    if (!running_.load()) {
        stats_.recordRejectedStopped();
        return rejectedFuture(RejectReason::kStopped, rejected);
    }
    Request request;
    request.t_submit = Clock::now();
    // Expired-at-submit: admitting a request that can no longer make
    // its deadline only manufactures doomed work for the dispatcher to
    // shed later; reject it at the door instead.
    if (deadline != kNoDeadline && request.t_submit >= deadline) {
        stats_.recordRejectedExpired();
        return rejectedFuture(RejectReason::kExpired, rejected);
    }
    const auto d = static_cast<std::size_t>(index_.dim());
    request.query.assign(query, query + d);
    request.k = k;
    request.deadline = deadline;
    // The sampling decision happens here, once, so the entire traced
    // path downstream keys off one bool. At trace_sample = 0 this is
    // a constant read — the "free when off" guarantee.
    request.traced = tracer_.shouldSample();
    std::future<ResultList> future = request.promise.get_future();
    switch (queue_.tryPush(std::move(request))) {
    case PushResult::kOk:
        stats_.recordAccepted();
        if (rejected != nullptr)
            *rejected = RejectReason::kNone;
        return future;
    case PushResult::kFull:
        stats_.recordRejectedFull();
        return rejectedFuture(RejectReason::kQueueFull, rejected);
    case PushResult::kClosed:
        // stop() raced with the running_ check above; the request was
        // never enqueued, so rejecting is loss-free.
        stats_.recordRejectedStopped();
        return rejectedFuture(RejectReason::kStopped, rejected);
    }
    return {}; // unreachable
}

std::future<ResultList>
SearchService::submit(const std::vector<float> &query, idx_t k,
                      RejectReason *rejected)
{
    JUNO_REQUIRE(static_cast<idx_t>(query.size()) == index_.dim(),
                 "query has " << query.size() << " dims, index has "
                              << index_.dim());
    return submit(query.data(), k, defaultDeadline(), rejected);
}

void
SearchService::dispatchLoop()
{
    // Per-dispatcher scratch, reused across micro-batches: the query
    // matrix, the engine's result table (via the batch-submit hook)
    // and the drained request vector never reallocate in steady
    // state. Below the hook, the engine's checked-out SearchContexts
    // persist too, so the whole dispatch path is allocation-quiet.
    std::vector<Request> batch;
    std::vector<float> queries;
    SearchResults results;
    std::vector<std::uint8_t> degraded_flags;
    std::vector<double> lat_queue, lat_batch, lat_search, lat_total;
    const idx_t dim = index_.dim();

    while (queue_.popBatch(batch, static_cast<std::size_t>(
                                      config_.max_batch),
                           config_.linger)) {
        const auto t_drain = Clock::now();

        // Doomed-work elimination: a request that expired while
        // queued cannot meet its SLO no matter how fast the scan is —
        // searching it would only push every later request further
        // past theirs. Its future settles with kExpired here and the
        // survivors compact to the front.
        std::size_t live = 0;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            Request &r = batch[i];
            if (r.deadline != kNoDeadline && t_drain >= r.deadline) {
                r.promise.set_exception(std::make_exception_ptr(
                    RejectedError(RejectReason::kExpired)));
                continue;
            }
            if (live != i)
                batch[live] = std::move(r);
            ++live;
        }
        if (live != batch.size()) {
            stats_.recordExpired(batch.size() - live);
            batch.resize(live);
            if (batch.empty())
                continue;
        }

        // Tiered degradation: evaluated once per batch against the
        // instantaneous backlog; the knobs ride on SearchOptions.
        DegradationPolicy::Knobs knobs;
        if (policy_ != nullptr)
            knobs = policy_->evaluate(queue_.size(), queue_.capacity());
        const bool tier_degraded =
            knobs.nprobe_scale != 1.0 || knobs.scan_tighten != 0.0;

        const idx_t n = static_cast<idx_t>(batch.size());
        queries.resize(static_cast<std::size_t>(n) *
                       static_cast<std::size_t>(dim));
        // Requests may ask for different k; the batch dispatches at
        // the maximum and each result list truncates to its own k
        // afterwards (top-m is a prefix of top-k for m <= k, results
        // being best-first).
        idx_t k_max = 0;
        Clock::time_point batch_deadline = kNoDeadline;
        for (idx_t i = 0; i < n; ++i) {
            const auto &r = batch[static_cast<std::size_t>(i)];
            std::memcpy(queries.data() + static_cast<std::size_t>(i) *
                                             static_cast<std::size_t>(dim),
                        r.query.data(),
                        static_cast<std::size_t>(dim) * sizeof(float));
            k_max = std::max(k_max, r.k);
            batch_deadline = std::min(batch_deadline, r.deadline);
        }

        SearchRequest request(
            FloatMatrixView(queries.data(), n, dim), SearchOptions{});
        request.options.k = k_max;
        request.options.threads = config_.search_threads;
        request.options.batch_size = config_.engine_chunk;
        request.options.collect_stats = config_.collect_stage_stats;
        // Explicit service budgets ride along on every batch so a
        // configured detach (0) stays detached even when the
        // environment sets JUNO_MEM_BUDGET.
        request.options.memory_budget_bytes = config_.memory_budget_bytes;
        // Overload resilience: the batch cuts off cooperatively at
        // the earliest member deadline (the scan loops check between
        // probe lists), and the policy's knobs shrink its probe
        // budget. The engine zeroes degraded_flags to n slots.
        request.options.deadline = batch_deadline;
        request.options.nprobe_scale = knobs.nprobe_scale;
        request.options.scan_tighten = knobs.scan_tighten;
        request.options.degraded = &degraded_flags;

        // One sampled request makes the whole dispatched batch traced
        // (its engine/stage spans are batch-level anyway); untraced
        // batches skip everything below at the cost of this loop's
        // flag scan.
        std::shared_ptr<Trace> trace;
        for (idx_t i = 0; i < n && trace == nullptr; ++i) {
            if (batch[static_cast<std::size_t>(i)].traced)
                trace = tracer_.makeTrace();
        }
        if (trace != nullptr) {
            trace->setLabel("sampled batch " +
                            std::to_string(trace->id()));
            request.options.trace = trace.get();
        }

        const auto t_ready = Clock::now();
        bool ok = true;
        std::exception_ptr error;
        try {
            // Chaos hook: an injected delay here doubles a scheduler
            // stall ahead of the engine; an injected error exercises
            // the batch-failure path below end to end.
            fault::inject("serve.dispatch");
            index_.search(request, results);
        } catch (...) {
            ok = false;
            error = std::current_exception();
        }
        const auto t_done = Clock::now();

        lat_queue.clear();
        lat_batch.clear();
        lat_search.clear();
        lat_total.clear();
        std::size_t n_degraded = 0;
        for (idx_t i = 0; i < n; ++i) {
            auto &r = batch[static_cast<std::size_t>(i)];
            if (!ok) {
                // Propagate the engine failure to every waiter rather
                // than abandoning promises (broken_promise hides the
                // cause).
                r.promise.set_exception(error);
                continue;
            }
            ResultList list(
                std::move(results[static_cast<std::size_t>(i)]));
            if (static_cast<idx_t>(list.size()) > r.k)
                list.resize(static_cast<std::size_t>(r.k));
            // A result is degraded when its scan was cut off at the
            // deadline, when the batch ran above tier 0, or when it
            // finished after its deadline anyway (late work is never
            // silently passed off as on-time full quality).
            list.degraded =
                degraded_flags[static_cast<std::size_t>(i)] != 0 ||
                tier_degraded ||
                (r.deadline != kNoDeadline && t_done > r.deadline);
            if (list.degraded)
                ++n_degraded;
            r.promise.set_value(std::move(list));
            lat_queue.push_back(micros(t_drain - r.t_submit));
            lat_batch.push_back(micros(t_ready - t_drain));
            lat_search.push_back(micros(t_done - t_ready));
            lat_total.push_back(micros(t_done - r.t_submit));
        }
        if (ok) {
            stats_.recordCompletions(lat_queue, lat_batch, lat_search,
                                     lat_total);
            stats_.recordBatch(static_cast<std::size_t>(n));
            if (n_degraded > 0)
                stats_.recordDegraded(n_degraded);
            if (tier_degraded || n_degraded > 0)
                stats_.recordDegradedBatch();
            // Measured queue waits feed the policy's p95 window — the
            // lagging half of its pressure signal.
            if (policy_ != nullptr)
                policy_->recordQueueWait(lat_queue);
        } else {
            // Exception-fulfilled futures still settle the accepted
            // requests: without this, submitted == completed + failed
            // (+ expired) would break forever after one engine
            // failure.
            stats_.recordFailed(static_cast<std::size_t>(n));
        }

        if (trace != nullptr) {
            // Service-level spans are appended after fulfilment (the
            // timestamps were captured live); the engine/stage spans
            // are already inside from the search call above.
            for (idx_t i = 0; i < n; ++i) {
                const auto &r = batch[static_cast<std::size_t>(i)];
                trace->complete1("queue", r.t_submit, t_drain, "k",
                                 static_cast<double>(r.k));
                trace->complete2("request", r.t_submit, t_done, "k",
                                 static_cast<double>(r.k), "total_us",
                                 micros(t_done - r.t_submit));
            }
            trace->complete1("batch_assemble", t_drain, t_ready, "batch",
                             static_cast<double>(n));
            trace->complete("search", t_ready, t_done);
            tracer_.collect(std::move(trace));
        }

        // Slow-query capture: independent of sampling, every request
        // is checked against the threshold (one compare each) and an
        // outlier gets a synthesized queue/batch/search trace into the
        // slow ring. Off (threshold 0) this whole block is one branch.
        if (tracer_.slowThresholdUs() > 0.0 && ok) {
            for (idx_t i = 0; i < n; ++i) {
                const auto &r = batch[static_cast<std::size_t>(i)];
                const double total = micros(t_done - r.t_submit);
                if (total <= tracer_.slowThresholdUs())
                    continue;
                auto slow = tracer_.makeTrace();
                slow->setLabel("slow query " +
                               std::to_string(slow->id()));
                slow->complete1("queue", r.t_submit, t_drain, "k",
                                static_cast<double>(r.k));
                slow->complete1("batch_assemble", t_drain, t_ready,
                                "batch", static_cast<double>(n));
                slow->complete("search", t_ready, t_done);
                slow->complete2("request", r.t_submit, t_done,
                                "total_us", total, "k",
                                static_cast<double>(r.k));
                tracer_.collectSlow(std::move(slow));
            }
        }
    }
}

} // namespace juno
