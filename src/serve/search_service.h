/**
 * @file
 * The online serving subsystem: turns the batch-oriented index stack
 * into a service for purely concurrent traffic.
 *
 * The whole index stack below this layer is batch-shaped — PR 1's
 * engine shards a SearchRequest over workers, PR 2's SIMD kernels
 * score whole candidate blocks — but real traffic arrives as many
 * independent clients each holding ONE query. SearchService is the
 * adapter the paper's throughput story presumes (JUNO Sec. 5.3:
 * per-query cost is amortised across large dispatched batches): a
 * micro-batcher drains a bounded MPMC queue into engine batches under
 * a dual trigger (batch full OR linger expired), dispatches them
 * through AnnIndex::search(SearchRequest), and fulfils one future per
 * request.
 *
 *   clients --submit()--> BoundedMpmcQueue --popBatch()--> dispatcher
 *       -> assemble FloatMatrix batch -> index.search(request, out)
 *       -> per-request promise fulfilment + ServiceStats accounting
 *
 * Admission control: the queue is bounded and submit() never blocks —
 * at capacity (or after stop(), or with the request already past its
 * deadline) the returned future carries a RejectedError with a typed
 * RejectReason and the per-reason ServiceStats counter bumps, so
 * overload sheds at the door instead of stretching everyone's p99.
 * Latency SLO accounting: each request's latency is split into queue /
 * batch-assembly / search components feeding per-thread QuantileSketch
 * shards (p50/p95/p99 via ServiceStats::snapshot()).
 *
 * Overload resilience (DESIGN.md "Overload resilience & fault
 * injection"): requests carry a deadline stamped at submit(); the
 * dispatcher sheds already-expired requests at dequeue (doomed work
 * never reaches the engine) and threads the earliest deadline of each
 * batch into the scan loops' cooperative cancellation. An optional
 * DegradationPolicy watches queue depth / queue-wait p95 and steps
 * probe budgets down per batch under pressure, so sustained overload
 * costs recall instead of tail latency. Results produced under any of
 * these mechanisms are flagged ResultList::degraded.
 */
#ifndef JUNO_SERVE_SEARCH_SERVICE_H
#define JUNO_SERVE_SEARCH_SERVICE_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

#include "baseline/index.h"
#include "live/live_index.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "registry/snapshot.h"
#include "serve/degradation_policy.h"
#include "serve/request_queue.h"
#include "serve/service_stats.h"

namespace juno {

/**
 * What one request's future delivers: best-first neighbours, plus the
 * degradation marker. Derives publicly from the vector so every
 * existing consumer (range-for, comparisons against plain
 * vector<Neighbor>, structured truncation) keeps working unchanged.
 */
class ResultList : public std::vector<Neighbor> {
  public:
    ResultList() = default;
    ResultList(std::vector<Neighbor> &&v)
        : std::vector<Neighbor>(std::move(v))
    {
    }

    /**
     * True when this result was produced under reduced quality: the
     * scan was cut off at the request's deadline (partial-but-valid
     * top-k), the batch ran at a degradation tier above 0, or the
     * request completed after its deadline had already passed. False
     * results are bitwise identical to an unloaded service's.
     */
    bool degraded = false;
};

/** Why submit() refused a request (RejectedError::reason()). */
enum class RejectReason {
    kNone,      ///< not rejected (accepted into the queue)
    kQueueFull, ///< admission control: queue at capacity
    kStopped,   ///< service not running (before start() / after stop())
    kExpired,   ///< deadline already passed (at submit or in queue)
};

/** Human-readable reject reason (metrics labels, logs). */
const char *rejectReasonName(RejectReason reason);

/**
 * The exception a rejected (or queue-expired) request's future
 * carries. Typed so callers can branch on reason() instead of parsing
 * a message.
 */
class RejectedError : public std::runtime_error {
  public:
    explicit RejectedError(RejectReason reason);

    RejectReason reason() const { return reason_; }

  private:
    RejectReason reason_;
};

/** Tunables of one SearchService. */
struct ServiceConfig {
    /**
     * Batch-closing dual trigger: a batch dispatches when it holds
     * max_batch requests OR when linger has elapsed since the
     * dispatcher saw its first request, whichever comes first.
     * max_batch = 1 (or linger = 0 with sparse arrivals) degrades to
     * per-query dispatch — the no-batching baseline bench_serve
     * measures against.
     */
    idx_t max_batch = 64;
    std::chrono::microseconds linger{200};
    /** Admission bound: submit() rejects beyond this backlog. */
    std::size_t queue_capacity = 4096;
    /**
     * Dispatcher (micro-batcher) threads. One preserves strict batch
     * FIFO; more exploit the engine's concurrent read path when batch
     * assembly itself becomes the bottleneck.
     */
    int dispatchers = 1;
    /** SearchOptions.threads of every dispatched batch. */
    int search_threads = 1;
    /** SearchOptions.batch_size (engine chunk) of dispatched batches. */
    idx_t engine_chunk = 0;
    /**
     * Forwarded to SearchOptions.collect_stats: serving keeps the
     * index's stage ledger off by default (the service has its own
     * accounting; see ServiceStats).
     */
    bool collect_stage_stats = false;
    /**
     * Out-of-core hot-list cache budget, applied to the index at
     * start(): > 0 attaches an admission-controlled cache of that
     * many bytes (serve/hot_list_cache.h), 0 explicitly detaches,
     * < 0 (default) resolves the JUNO_MEM_BUDGET environment variable
     * (and leaves the index untouched when that is unset too).
     * Results are bitwise identical under every budget.
     */
    std::int64_t memory_budget_bytes = -1;

    // ---- Observability (DESIGN.md "Observability") ----
    /**
     * Export this service through the metrics registry for its
     * lifetime: admission counters, per-component latency summaries,
     * the index's hot-list cache counters, process RSS/faults and
     * build info all register as pull callbacks — zero hot-path cost,
     * evaluated only when someone renders the registry.
     */
    bool metrics = true;
    /** Registry to export into; null uses MetricsRegistry::global(). */
    MetricsRegistry *registry = nullptr;
    /**
     * Flight-recorder period in seconds: > 0 runs a background
     * reporter thread that logs a one-line summary to stderr each
     * tick and, when metrics_jsonl is set, appends a registry
     * snapshot as one JSON line. A final tick fires on stop().
     * 0 (default) disables the recorder.
     */
    double stats_every_s = 0.0;
    /** JSONL path the flight recorder appends to (empty: log only). */
    std::string metrics_jsonl;
    /**
     * Fraction of requests traced end to end (queue -> batch ->
     * engine -> pipeline stages), in [0, 1]. The decision is one
     * relaxed atomic at submit; 0 (default) reduces to a constant
     * read, which is what keeps tracing free when off.
     */
    double trace_sample = 0.0;
    /**
     * Slow-query capture: a request whose total latency exceeds this
     * many microseconds gets a synthesized queue/batch/search trace
     * in the tracer's slow ring, independent of sampling (0 = off).
     */
    double slow_trace_us = 0.0;

    // ---- Overload resilience ----
    /**
     * Default per-request deadline in milliseconds, stamped at
     * submit() (the explicit-deadline overload overrides it). A
     * request past its deadline is rejected at the door (kExpired),
     * shed at dequeue before wasting a search, or — once dispatched —
     * cut off cooperatively in the scan loops with partial-but-valid
     * results flagged degraded. 0 (the default) means no deadline:
     * behaviour and results are bitwise identical to a service
     * without deadline support.
     */
    double default_deadline_ms = 0.0;
    /**
     * Tiered graceful degradation (serve/degradation_policy.h):
     * enabled steps probe budgets down per batch under queue
     * pressure. Disabled (the default) keeps every batch at full
     * quality — bitwise-identical results.
     */
    DegradationConfig degradation;
};

/**
 * Owns the dispatcher threads and the request queue in front of one
 * AnnIndex. Lifecycle: construct -> start() -> submit()... -> stop().
 * stop() drains: every accepted request is completed before it
 * returns (no lost or double-completed futures), and later submits
 * are rejected. One-shot: a stopped service cannot be restarted.
 */
class SearchService {
  public:
    /** @p index must outlive the service and stay unmodified while
     * the service runs (the read path is exercised concurrently). */
    SearchService(AnnIndex &index, ServiceConfig config);

    /**
     * Warm start: the service owns an index it opened itself. The
     * usual source is openIndex(path) with mmap enabled, so a serving
     * process is first-query-ready after page-in instead of a full
     * rebuild (juno_cli serve --load).
     */
    SearchService(std::unique_ptr<AnnIndex> index, ServiceConfig config);

    /**
     * Warm start from a snapshot path (registry/index_factory.h);
     * @p options defaults to zero-copy mmap loading.
     */
    SearchService(const std::string &snapshot_path, ServiceConfig config,
                  const SnapshotOptions &options = {});

    ~SearchService();

    SearchService(const SearchService &) = delete;
    SearchService &operator=(const SearchService &) = delete;

    /** Spawns the dispatcher threads. Must be called exactly once. */
    void start() JUNO_EXCLUDES(lifecycle_mutex_);

    /**
     * Drains and joins: closes admission, lets dispatchers finish
     * everything already accepted, then joins them. Idempotent and
     * safe to call from several threads (every return implies the
     * drain completed). The destructor calls stop() implicitly.
     */
    void stop() JUNO_EXCLUDES(lifecycle_mutex_);

    bool running() const { return running_.load(); }

    /** The deadline clock (steady: never jumps with wall time). */
    using Clock = std::chrono::steady_clock;
    /** Sentinel for "no deadline". */
    static constexpr Clock::time_point kNoDeadline =
        Clock::time_point::max();

    /**
     * Submits one query (dim() floats, copied) for its top-@p k
     * neighbours; k clamps to the index size, k == 0 yields an empty
     * list. Returns the future delivering the ResultList — identical
     * to what a direct search(SearchRequest) over the same query
     * returns (and ResultList::degraded false) unless overload
     * mechanisms engaged. The request's deadline comes from
     * config.default_deadline_ms (0 = none).
     *
     * Rejection (queue full, not running, or deadline already passed)
     * never blocks: the returned future is valid but carries a
     * RejectedError whose reason() is also stored into @p rejected
     * when non-null — the cheap way for a closed-loop client to
     * detect shedding without catching. Accepted submits store
     * RejectReason::kNone. The per-reason ServiceStats counter bumps
     * either way.
     */
    std::future<ResultList> submit(const float *query, idx_t k,
                                   RejectReason *rejected = nullptr);

    /**
     * Same with an explicit per-request deadline (overrides the
     * configured default; kNoDeadline = none). A deadline in the past
     * rejects immediately with kExpired.
     */
    std::future<ResultList> submit(const float *query, idx_t k,
                                   Clock::time_point deadline,
                                   RejectReason *rejected = nullptr);

    /** Same, with a size-checked vector. */
    std::future<ResultList> submit(const std::vector<float> &query,
                                   idx_t k,
                                   RejectReason *rejected = nullptr);

    // ---- Live mutation (DESIGN.md "Live mutability") ----

    /**
     * True when the served index is a LiveIndex: the mutation methods
     * below can apply. Decided once at construction (dynamic type of
     * the index never changes while the service runs).
     */
    bool liveEnabled() const { return live_ != nullptr; }

    /**
     * Applies one live mutation with typed admission like submit():
     * never blocks in-flight searches (the index's writer lock is held
     * for an O(1) buffer append) and never throws for expectable
     * conditions. Returns kStopped before start()/after stop(),
     * kUnsupported when the served index is immutable, else the
     * index's own status. Every call bumps the service's per-op
     * counters (ServiceStats::Snapshot live_* fields, juno_live_*
     * metrics).
     */
    MutateStatus insert(const float *vec, idx_t id);
    MutateStatus remove(idx_t id);
    MutateStatus upsert(const float *vec, idx_t id);

    /** The served LiveIndex's freshness/merge statistics (a
     * default-constructed LiveStats when !liveEnabled()). */
    LiveStats liveStats() const;

    /** Current degradation tier (0 when the policy is off). */
    int degradationTier() const;

    const ServiceStats &stats() const { return stats_; }

    /**
     * Latency/admission snapshot augmented with the served index's
     * hot-list cache counters and the process's RSS plus page-fault
     * deltas since start() (the out-of-core health signals).
     */
    ServiceStats::Snapshot snapshot() const JUNO_EXCLUDES(lifecycle_mutex_);

    AnnIndex &index() { return index_; }
    const ServiceConfig &config() const { return config_; }

    /** Captured traces (sampled + slow ring) live here. */
    Tracer &tracer() { return tracer_; }
    const Tracer &tracer() const { return tracer_; }

  private:
    /** One queued query plus its completion obligation. */
    struct Request {
        std::vector<float> query;
        idx_t k = 0;
        std::promise<ResultList> promise;
        Clock::time_point t_submit;
        /** Shed/cut-off point; kNoDeadline when undeadlined. */
        Clock::time_point deadline = kNoDeadline;
        /** Sampling decision, made once at submit(). */
        bool traced = false;
    };

    void dispatchLoop();

    /** The deadline config.default_deadline_ms implies for a request
     * submitted now (kNoDeadline when the default is 0). */
    Clock::time_point defaultDeadline() const;

    /** Registers the pull callbacks (start(), when config_.metrics). */
    void registerMetrics() JUNO_REQUIRES(lifecycle_mutex_);
    /** The registry this service exports into. */
    MetricsRegistry &registry() const;
    /** Background flight-recorder loop (period config_.stats_every_s). */
    void reporterLoop() JUNO_EXCLUDES(reporter_mutex_);
    /** Signals and joins the reporter thread (idempotent). */
    void stopReporter() JUNO_EXCLUDES(reporter_mutex_);
    /** One recorder tick: summary line + optional JSONL append. */
    void recorderTick(bool final_tick) JUNO_EXCLUDES(lifecycle_mutex_);

    /** Set by the warm-start constructors; null when borrowing. */
    std::unique_ptr<AnnIndex> owned_index_;
    AnnIndex &index_;
    /** The live-mutation view of index_; null when immutable. */
    LiveIndex *live_ = nullptr;
    const ServiceConfig config_;
    BoundedMpmcQueue<Request> queue_;
    ServiceStats stats_;

    /**
     * Guards the start/stop state machine and base_usage_. Mutable so
     * snapshot() const can read base_usage_ coherently; dispatchers
     * never take this lock, so holding it across the stop() join
     * cannot deadlock (a concurrent snapshot() blocks until the drain
     * finishes, which is the consistent picture anyway).
     */
    mutable Mutex lifecycle_mutex_;
    enum class State { kIdle, kRunning, kStopped };
    State state_ JUNO_GUARDED_BY(lifecycle_mutex_) = State::kIdle;
    std::vector<std::thread> dispatchers_ JUNO_GUARDED_BY(lifecycle_mutex_);
    std::atomic<bool> running_{false};
    /** Usage at start(); snapshots report fault deltas against it. */
    ResourceUsage base_usage_ JUNO_GUARDED_BY(lifecycle_mutex_);

    Tracer tracer_;
    /** Set by start() before any reader thread exists. */
    Clock::time_point start_time_;

    /** Null unless config_.degradation.enabled; dispatchers evaluate
     * it per batch (it is internally synchronised). */
    std::unique_ptr<DegradationPolicy> policy_;

    /**
     * Reporter thread state. Lock order: never nested with
     * lifecycle_mutex_ (start() holds lifecycle while spawning, stop()
     * releases lifecycle before joining here), so there is no
     * inversion to get wrong.
     */
    Mutex reporter_mutex_;
    std::condition_variable reporter_cv_;
    bool reporter_stop_ JUNO_GUARDED_BY(reporter_mutex_) = false;
    std::thread reporter_ JUNO_GUARDED_BY(reporter_mutex_);

    /**
     * RAII metric registrations. Declared last on purpose: members
     * destruct in reverse order, so the callbacks (which capture this
     * service's stats/index/tracer) unregister before anything they
     * read is torn down.
     */
    std::vector<MetricsRegistry::Registration> metric_regs_
        JUNO_GUARDED_BY(lifecycle_mutex_);
};

} // namespace juno

#endif // JUNO_SERVE_SEARCH_SERVICE_H
