/**
 * @file
 * Tiered graceful degradation for the serving layer: under overload,
 * trade recall for tail latency instead of letting the queue stretch
 * every request's p99.
 *
 * The policy is a small hysteresis state machine over discrete tiers.
 * Tier 0 is full quality (all knobs neutral — results bitwise
 * identical to a service without the policy). Each higher tier scales
 * the IVF probe budget down (SearchOptions::nprobe_scale) and tightens
 * the fast-scan block prefilter (SearchOptions::scan_tighten), so a
 * degraded batch does strictly less scan work per query.
 *
 * Inputs, evaluated once per drained batch by the dispatcher:
 *  - queue depth as a fraction of capacity (the leading indicator:
 *    depth rises the instant arrivals outrun service rate);
 *  - measured queue-wait p95 over a sliding window of recent requests
 *    (the lagging confirmation: how much latency the backlog already
 *    cost), compared against an optional budget.
 *
 * Transitions need patience — several consecutive pressured (or calm)
 * evaluations — before stepping one tier, and the step-down watermark
 * sits well below the step-up watermark. The hysteresis band keeps the
 * policy from oscillating when load hovers near a threshold, which
 * would otherwise make recall flap batch to batch.
 */
#ifndef JUNO_SERVE_DEGRADATION_POLICY_H
#define JUNO_SERVE_DEGRADATION_POLICY_H

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/thread_annotations.h"

namespace juno {

/** Tunables of the degradation state machine. */
struct DegradationConfig {
    /** Master switch; off keeps every batch at tier 0. */
    bool enabled = false;
    /** Highest tier the policy may reach (clamped to kMaxTier). */
    int max_tier = 3;
    /** Queue fraction at/above which a batch counts as pressured. */
    double high_watermark = 0.50;
    /** Queue fraction at/below which a batch counts as calm. */
    double low_watermark = 0.125;
    /**
     * Queue-wait p95 budget in microseconds; > 0 makes measured
     * queue wait a second pressure trigger (0 = depth only).
     */
    double queue_p95_budget_us = 0.0;
    /** Consecutive pressured batches before stepping a tier up. */
    int up_patience = 2;
    /** Consecutive calm batches before stepping a tier down. */
    int down_patience = 8;
};

/**
 * The state machine. Thread-safe: several dispatchers may evaluate and
 * feed it concurrently; tier() is a relaxed atomic read for gauges.
 */
class DegradationPolicy {
  public:
    /** Per-batch knobs the dispatcher stamps onto SearchOptions. */
    struct Knobs {
        double nprobe_scale = 1.0; ///< 1.0 = full probe budget
        double scan_tighten = 0.0; ///< 0.0 = exact prefilter
    };

    static constexpr int kMaxTier = 3;

    explicit DegradationPolicy(DegradationConfig config);

    /**
     * One evaluation, called at batch drain with the instantaneous
     * backlog. Advances the hysteresis counters and returns the knobs
     * for the batch about to dispatch.
     */
    Knobs evaluate(std::size_t queue_depth, std::size_t queue_capacity)
        JUNO_EXCLUDES(mutex_);

    /** Feeds measured queue waits (microseconds) of a fulfilled batch
     * into the sliding p95 window. */
    void recordQueueWait(const std::vector<double> &waits_us)
        JUNO_EXCLUDES(mutex_);

    /** Current tier (0 = full quality), for gauges and tests. */
    int tier() const { return tier_.load(std::memory_order_relaxed); }

    /** Total tier changes (both directions), for tests/diagnostics. */
    std::uint64_t
    transitions() const
    {
        return transitions_.load(std::memory_order_relaxed);
    }

    /** The knob table: what each tier costs in probe budget. */
    static Knobs knobsForTier(int tier);

    const DegradationConfig &config() const { return config_; }

  private:
    /** Sliding queue-wait window: big enough to smooth one batch,
     * small enough to notice drain within a few batches. */
    static constexpr std::size_t kWindow = 256;

    double queueWaitP95Locked() const JUNO_REQUIRES(mutex_);

    const DegradationConfig config_;

    mutable Mutex mutex_;
    std::vector<double> window_ JUNO_GUARDED_BY(mutex_);
    std::size_t window_next_ JUNO_GUARDED_BY(mutex_) = 0;
    bool window_full_ JUNO_GUARDED_BY(mutex_) = false;
    int pressured_streak_ JUNO_GUARDED_BY(mutex_) = 0;
    int calm_streak_ JUNO_GUARDED_BY(mutex_) = 0;

    std::atomic<int> tier_{0};
    std::atomic<std::uint64_t> transitions_{0};
};

} // namespace juno

#endif // JUNO_SERVE_DEGRADATION_POLICY_H
