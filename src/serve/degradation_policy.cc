#include "serve/degradation_policy.h"

#include <algorithm>

#include "common/logging.h"

namespace juno {

namespace {

/**
 * Tier knob tables. Scale factors shrink the probe budget roughly
 * geometrically — each tier sheds about a quarter of the remaining
 * scan work — while the prefilter tightens gently (it discards blocks
 * whose quantised bound is within the margin of the heap's worst, so
 * even tier 3 only skips near-threshold blocks).
 */
constexpr double kNprobeScale[DegradationPolicy::kMaxTier + 1] = {
    1.0, 0.75, 0.5, 0.25};
constexpr double kScanTighten[DegradationPolicy::kMaxTier + 1] = {
    0.0, 0.05, 0.10, 0.20};

} // namespace

DegradationPolicy::DegradationPolicy(DegradationConfig config)
    : config_(config)
{
    JUNO_REQUIRE(config_.max_tier >= 0 && config_.max_tier <= kMaxTier,
                 "degradation max_tier must be in [0, " << kMaxTier
                                                        << "]");
    JUNO_REQUIRE(config_.high_watermark > config_.low_watermark,
                 "degradation watermarks must satisfy high > low "
                 "(the hysteresis band)");
    JUNO_REQUIRE(config_.high_watermark <= 1.0 &&
                     config_.low_watermark >= 0.0,
                 "degradation watermarks must be fractions in [0, 1]");
    JUNO_REQUIRE(config_.up_patience > 0 && config_.down_patience > 0,
                 "degradation patience counts must be positive");
    JUNO_REQUIRE(config_.queue_p95_budget_us >= 0.0,
                 "queue_p95_budget_us must be >= 0");
}

DegradationPolicy::Knobs
DegradationPolicy::knobsForTier(int tier)
{
    const int t = std::clamp(tier, 0, kMaxTier);
    Knobs k;
    k.nprobe_scale = kNprobeScale[t];
    k.scan_tighten = kScanTighten[t];
    return k;
}

double
DegradationPolicy::queueWaitP95Locked() const
{
    const std::size_t n = window_full_ ? window_.size() : window_next_;
    if (n == 0)
        return 0.0;
    // The window is tiny (<= kWindow); copy + nth_element once per
    // batch is cheaper than keeping an ordered structure up to date on
    // every completion.
    std::vector<double> sorted(window_.begin(),
                               window_.begin() +
                                   static_cast<std::ptrdiff_t>(n));
    const std::size_t idx =
        std::min(n - 1, static_cast<std::size_t>(
                            static_cast<double>(n) * 0.95));
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<std::ptrdiff_t>(idx),
                     sorted.end());
    return sorted[idx];
}

void
DegradationPolicy::recordQueueWait(const std::vector<double> &waits_us)
{
    if (!config_.enabled || waits_us.empty())
        return;
    MutexLock lock(mutex_);
    if (window_.size() < kWindow)
        window_.resize(kWindow, 0.0);
    for (const double w : waits_us) {
        window_[window_next_] = w;
        if (++window_next_ == kWindow) {
            window_next_ = 0;
            window_full_ = true;
        }
    }
}

DegradationPolicy::Knobs
DegradationPolicy::evaluate(std::size_t queue_depth,
                            std::size_t queue_capacity)
{
    if (!config_.enabled || queue_capacity == 0)
        return Knobs{};
    const double fraction = static_cast<double>(queue_depth) /
                            static_cast<double>(queue_capacity);
    MutexLock lock(mutex_);
    const double p95 = config_.queue_p95_budget_us > 0.0
                           ? queueWaitP95Locked()
                           : 0.0;
    const bool pressured =
        fraction >= config_.high_watermark ||
        (config_.queue_p95_budget_us > 0.0 &&
         p95 > config_.queue_p95_budget_us);
    // Calm requires the backlog to have genuinely drained, not merely
    // dipped under the step-up line: the gap between the watermarks is
    // the hysteresis band where the tier holds.
    const bool calm =
        fraction <= config_.low_watermark &&
        (config_.queue_p95_budget_us <= 0.0 ||
         p95 < 0.8 * config_.queue_p95_budget_us);
    int tier = tier_.load(std::memory_order_relaxed);
    if (pressured) {
        calm_streak_ = 0;
        if (++pressured_streak_ >= config_.up_patience &&
            tier < config_.max_tier) {
            ++tier;
            pressured_streak_ = 0;
            tier_.store(tier, std::memory_order_relaxed);
            transitions_.fetch_add(1, std::memory_order_relaxed);
        }
    } else if (calm) {
        pressured_streak_ = 0;
        if (++calm_streak_ >= config_.down_patience && tier > 0) {
            --tier;
            calm_streak_ = 0;
            tier_.store(tier, std::memory_order_relaxed);
            transitions_.fetch_add(1, std::memory_order_relaxed);
        }
    } else {
        // In the band: hold the tier, restart both streaks.
        pressured_streak_ = 0;
        calm_streak_ = 0;
    }
    return knobsForTier(tier);
}

} // namespace juno
