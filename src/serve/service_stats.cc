#include "serve/service_stats.h"

#include <cstdio>
#include <functional>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace juno {

ResourceUsage
readResourceUsage()
{
    ResourceUsage u;
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru {};
    if (::getrusage(RUSAGE_SELF, &ru) == 0) {
        u.major_faults = static_cast<std::uint64_t>(ru.ru_majflt);
        u.minor_faults = static_cast<std::uint64_t>(ru.ru_minflt);
        // ru_maxrss is the high-water mark (KiB on Linux, bytes on
        // macOS) — a fallback if /proc is unavailable below.
#if defined(__APPLE__)
        u.rss_bytes = static_cast<std::size_t>(ru.ru_maxrss);
#else
        u.rss_bytes = static_cast<std::size_t>(ru.ru_maxrss) * 1024;
#endif
    }
#endif
#if defined(__linux__)
    // Current (not peak) RSS: field 2 of /proc/self/statm, in pages.
    if (std::FILE *f = std::fopen("/proc/self/statm", "r")) {
        unsigned long long vm_pages = 0, rss_pages = 0;
        if (std::fscanf(f, "%llu %llu", &vm_pages, &rss_pages) == 2)
            u.rss_bytes = static_cast<std::size_t>(rss_pages) *
                          static_cast<std::size_t>(
                              ::sysconf(_SC_PAGESIZE));
        std::fclose(f);
    }
#endif
    return u;
}

namespace {

LatencySummary
summarise(const QuantileSketch &sketch)
{
    LatencySummary s;
    s.count = sketch.count();
    if (s.count == 0)
        return s;
    s.mean = sketch.mean();
    s.p50 = sketch.quantile(0.50);
    s.p95 = sketch.quantile(0.95);
    s.p99 = sketch.quantile(0.99);
    s.max = sketch.quantile(1.0);
    return s;
}

} // namespace

ServiceStats::Shard &
ServiceStats::localShard()
{
    const std::size_t h =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return shards_[h % kShards];
}

void
ServiceStats::recordCompletion(double queue_us, double batch_us,
                               double search_us, double total_us)
{
    Shard &shard = localShard();
    {
        MutexLock lock(shard.mutex);
        shard.queue_us.add(queue_us);
        shard.batch_us.add(batch_us);
        shard.search_us.add(search_us);
        shard.total_us.add(total_us);
    }
    completed_.fetch_add(1);
}

void
ServiceStats::recordCompletions(const std::vector<double> &queue_us,
                                const std::vector<double> &batch_us,
                                const std::vector<double> &search_us,
                                const std::vector<double> &total_us)
{
    const std::size_t n = total_us.size();
    if (n == 0)
        return;
    Shard &shard = localShard();
    {
        MutexLock lock(shard.mutex);
        shard.queue_us.add(queue_us);
        shard.batch_us.add(batch_us);
        shard.search_us.add(search_us);
        shard.total_us.add(total_us);
    }
    completed_.fetch_add(n);
}

void
ServiceStats::recordBatch(std::size_t size)
{
    batches_.fetch_add(1);
    batched_requests_.fetch_add(size);
}

LatencySummary
ServiceStats::componentSummary(Component component) const
{
    QuantileSketch merged;
    for (const Shard &shard : shards_) {
        MutexLock lock(shard.mutex);
        switch (component) {
        case Component::kQueue:
            merged.merge(shard.queue_us);
            break;
        case Component::kBatch:
            merged.merge(shard.batch_us);
            break;
        case Component::kSearch:
            merged.merge(shard.search_us);
            break;
        case Component::kTotal:
            merged.merge(shard.total_us);
            break;
        }
    }
    return summarise(merged);
}

ServiceStats::Snapshot
ServiceStats::snapshot() const
{
    QuantileSketch queue_us, batch_us, search_us, total_us;
    for (const Shard &shard : shards_) {
        MutexLock lock(shard.mutex);
        queue_us.merge(shard.queue_us);
        batch_us.merge(shard.batch_us);
        search_us.merge(shard.search_us);
        total_us.merge(shard.total_us);
    }
    Snapshot snap;
    snap.submitted = submitted_.load();
    snap.completed = completed_.load();
    snap.failed = failed_.load();
    snap.rejected_full = rejected_full_.load();
    snap.rejected_stopped = rejected_stopped_.load();
    snap.rejected_expired = rejected_expired_.load();
    snap.expired = expired_.load();
    snap.degraded = degraded_.load();
    snap.degraded_batches = degraded_batches_.load();
    snap.batches = batches_.load();
    const std::uint64_t batched = batched_requests_.load();
    snap.mean_batch = snap.batches == 0
                          ? 0.0
                          : static_cast<double>(batched) /
                                static_cast<double>(snap.batches);
    snap.queue_us = summarise(queue_us);
    snap.batch_us = summarise(batch_us);
    snap.search_us = summarise(search_us);
    snap.total_us = summarise(total_us);
    snap.live_inserts = live_inserts_.load();
    snap.live_removes = live_removes_.load();
    snap.live_upserts = live_upserts_.load();
    snap.live_rejected = live_rejected_.load();
    return snap;
}

} // namespace juno
