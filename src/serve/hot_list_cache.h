/**
 * @file
 * Admission-controlled hot-list cache for out-of-core serving.
 *
 * A snapshot opened in mmap mode pages its scan payloads in on
 * demand, which is perfect until the index outgrows RAM: then the OS
 * evicts whatever it likes, and a probe of an evicted inverted list
 * stalls the synchronous scan on page faults. HotListCache applies
 * the classic cache-hierarchy discipline to inverted lists instead of
 * cache lines:
 *
 *  - frequency tracking: every probe of a list bumps its counter
 *    (periodically halved, so the history ages and traffic shifts
 *    re-rank the lists);
 *  - admission control: after a cold scan the list's payload is
 *    *offered*; it is copied out of the mmap view into pinned heap
 *    memory only if it fits the byte budget, evicting strictly
 *    less-frequent residents — a one-hit-wonder can never displace a
 *    proven-hot list (TinyLFU-style admission);
 *  - pinning: cached copies live in ordinary heap memory the
 *    serving process owns, immune to eviction of the file mapping,
 *    and scans of cached lists run fault-free while madvise
 *    prefetches cover the cold tail.
 *
 * The cache is bitwise-transparent: a cached payload is a verbatim
 * copy of the bytes the scan kernels would have read from the
 * mapping, so cached and uncached searches return identical results
 * (the ooc bench and CTest parity gates enforce this).
 *
 * Thread safety: all members are guarded by one mutex; entries are
 * handed out as shared_ptr so an evicted list stays valid for
 * in-flight readers. Lock hold times are micro-scale against
 * milli-scale scans (one find() per probed list, one offer() per
 * cold list).
 */
#ifndef JUNO_SERVE_HOT_LIST_CACHE_H
#define JUNO_SERVE_HOT_LIST_CACHE_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "common/types.h"

namespace juno {

/**
 * One pinned inverted list: up to two flat payload planes whose
 * meaning the owning index defines. IVFPQ pins the interleaved
 * entry_t blocks (primary) and the nibble-packed PQ4 plane
 * (secondary); IVF-Flat pins the list's point rows re-materialised
 * contiguously in list order (primary only).
 */
struct CachedList {
    std::vector<std::uint8_t> primary;
    std::vector<std::uint8_t> secondary;

    std::size_t bytes() const { return primary.size() + secondary.size(); }

    template <typename T>
    const T *
    primaryAs() const
    {
        return reinterpret_cast<const T *>(primary.data());
    }

    template <typename T>
    const T *
    secondaryAs() const
    {
        return reinterpret_cast<const T *>(secondary.data());
    }
};

/** Admission-controlled, byte-budgeted cache of hot inverted lists. */
class HotListCache {
  public:
    using EntryPtr = std::shared_ptr<const CachedList>;

    /** Point-in-time counters (ServiceStats / bench reporting). */
    struct Counters {
        std::uint64_t lookups = 0;  ///< find() calls
        std::uint64_t hits = 0;     ///< find() returned a pinned entry
        std::uint64_t misses = 0;   ///< find() returned null
        std::uint64_t admitted = 0; ///< offers copied into the cache
        std::uint64_t evicted = 0;  ///< residents displaced
        /** Offers larger than the whole budget (can never fit). */
        std::uint64_t rejected_capacity = 0;
        /** Offers colder than every eviction victim (admission said no). */
        std::uint64_t rejected_policy = 0;
        std::size_t pinned_bytes = 0;   ///< resident payload bytes
        std::size_t resident_lists = 0; ///< resident entry count
        std::size_t budget_bytes = 0;   ///< configured budget
    };

    /**
     * @p budget_bytes caps the pinned payload total; 0 disables the
     * cache entirely (find() always misses without counting, offer()
     * is a no-op — the pure-mmap path). @p num_lists sizes the
     * frequency table (list ids must stay below it).
     */
    HotListCache(std::size_t budget_bytes, idx_t num_lists);

    bool enabled() const { return budget_ > 0; }
    std::size_t budget() const { return budget_; }

    /**
     * Records an access to @p list and returns its pinned entry, or
     * null when the list is not resident. The returned entry stays
     * valid after eviction (shared ownership).
     */
    EntryPtr find(cluster_t list) JUNO_EXCLUDES(mutex_);

    /**
     * Offers a cold list's payload for admission after its scan. The
     * planes are copied (pinned) only when the admission policy
     * accepts: the payload fits the budget, possibly after evicting
     * strictly less-frequent residents. Null planes of size 0 are
     * valid (single-plane owners).
     */
    void offer(cluster_t list, const void *primary, std::size_t primary_bytes,
               const void *secondary, std::size_t secondary_bytes)
        JUNO_EXCLUDES(mutex_);

    Counters counters() const JUNO_EXCLUDES(mutex_);

    /**
     * Parses a byte size with an optional k/m/g suffix (binary
     * multiples, case-insensitive): "1048576", "64k", "512M", "2g".
     * Returns -1 on empty or malformed input.
     */
    static std::int64_t parseByteSize(const std::string &text);

    /**
     * The JUNO_MEM_BUDGET environment variable as a byte count, or -1
     * when unset or unparseable (a malformed value warns once).
     */
    static std::int64_t budgetFromEnv();

  private:
    /** Accesses between halvings of every frequency counter. */
    std::uint64_t ageInterval() const JUNO_REQUIRES(mutex_);
    void ageLocked() JUNO_REQUIRES(mutex_);

    const std::size_t budget_;
    mutable Mutex mutex_;
    std::vector<std::uint32_t> freq_ JUNO_GUARDED_BY(mutex_);
    std::unordered_map<cluster_t, std::shared_ptr<const CachedList>>
        entries_ JUNO_GUARDED_BY(mutex_);
    std::size_t pinned_bytes_ JUNO_GUARDED_BY(mutex_) = 0;
    std::uint64_t accesses_since_age_ JUNO_GUARDED_BY(mutex_) = 0;
    Counters counters_ JUNO_GUARDED_BY(mutex_);
};

} // namespace juno

#endif // JUNO_SERVE_HOT_LIST_CACHE_H
