/** @file Tests for ground truth and the recall metrics of Sec. 6.1. */
#include <gtest/gtest.h>

#include "common/logging.h"
#include "dataset/ground_truth.h"
#include "dataset/recall.h"
#include "dataset/synthetic.h"

namespace juno {
namespace {

TEST(GroundTruth, SelfQueryFindsItself)
{
    SyntheticSpec spec;
    spec.kind = DatasetKind::kUniform;
    spec.num_points = 100;
    spec.num_queries = 0;
    spec.dim = 8;
    const auto ds = makeDataset(spec);
    // Queries are the first 10 base points: rank-0 must be identity.
    const auto gt = computeGroundTruth(Metric::kL2, ds.base.view(),
                                       ds.base.view().slice(0, 10), 3);
    for (idx_t q = 0; q < 10; ++q) {
        EXPECT_EQ(gt.neighbors[static_cast<std::size_t>(q)][0].id, q);
        EXPECT_FLOAT_EQ(gt.neighbors[static_cast<std::size_t>(q)][0].score,
                        0.0f);
    }
}

TEST(GroundTruth, ResultsAreSortedBestFirst)
{
    SyntheticSpec spec;
    spec.kind = DatasetKind::kUniform;
    spec.num_points = 200;
    spec.num_queries = 5;
    spec.dim = 6;
    const auto ds = makeDataset(spec);
    const auto gt = computeGroundTruth(Metric::kL2, ds.base.view(),
                                       ds.queries.view(), 10);
    for (const auto &row : gt.neighbors) {
        ASSERT_EQ(row.size(), 10u);
        for (std::size_t i = 1; i < row.size(); ++i)
            EXPECT_LE(row[i - 1].score, row[i].score);
    }
}

TEST(GroundTruth, IpOrdersDescending)
{
    SyntheticSpec spec;
    spec.kind = DatasetKind::kUniform;
    spec.num_points = 150;
    spec.num_queries = 4;
    spec.dim = 6;
    const auto ds = makeDataset(spec);
    const auto gt = computeGroundTruth(Metric::kInnerProduct,
                                       ds.base.view(), ds.queries.view(), 8);
    for (const auto &row : gt.neighbors)
        for (std::size_t i = 1; i < row.size(); ++i)
            EXPECT_GE(row[i - 1].score, row[i].score);
}

TEST(GroundTruth, ParallelMatchesSerial)
{
    SyntheticSpec spec;
    spec.num_points = 120;
    spec.num_queries = 6;
    spec.dim = 16;
    const auto ds = makeDataset(spec);
    ThreadPool pool(3);
    const auto serial = computeGroundTruth(Metric::kL2, ds.base.view(),
                                           ds.queries.view(), 5);
    const auto parallel = computeGroundTruth(
        Metric::kL2, ds.base.view(), ds.queries.view(), 5, &pool);
    for (std::size_t q = 0; q < serial.neighbors.size(); ++q)
        EXPECT_EQ(serial.neighbors[q], parallel.neighbors[q]);
}

TEST(GroundTruth, RejectsBadK)
{
    FloatMatrix base(5, 2), queries(1, 2);
    EXPECT_THROW(
        computeGroundTruth(Metric::kL2, base.view(), queries.view(), 0),
        ConfigError);
    EXPECT_THROW(
        computeGroundTruth(Metric::kL2, base.view(), queries.view(), 6),
        ConfigError);
}

GroundTruth
makeGt(std::vector<std::vector<idx_t>> ids)
{
    GroundTruth gt;
    gt.k = static_cast<idx_t>(ids[0].size());
    for (const auto &row : ids) {
        std::vector<Neighbor> nbs;
        float s = 0.0f;
        for (idx_t id : row)
            nbs.push_back({id, s += 1.0f});
        gt.neighbors.push_back(std::move(nbs));
    }
    return gt;
}

ResultSet
makeResults(std::vector<std::vector<idx_t>> ids)
{
    ResultSet rs;
    for (const auto &row : ids) {
        std::vector<Neighbor> nbs;
        for (idx_t id : row)
            nbs.push_back({id, 0.0f});
        rs.push_back(std::move(nbs));
    }
    return rs;
}

TEST(Recall, R1AtKCountsTrueNnMembership)
{
    // Paper's definition: 8 of 10 queries contain the true NN -> 0.8.
    const auto gt = makeGt({{1, 2}, {3, 4}, {5, 6}});
    const auto rs = makeResults({{9, 1}, {4, 7}, {5, 8}});
    EXPECT_DOUBLE_EQ(recall1AtK(gt, rs), 2.0 / 3.0);
}

TEST(Recall, R1AtKIgnoresOrder)
{
    const auto gt = makeGt({{7, 8}});
    const auto rs = makeResults({{1, 2, 3, 7}});
    EXPECT_DOUBLE_EQ(recall1AtK(gt, rs), 1.0);
}

TEST(Recall, RmAtKAveragesCoverage)
{
    const auto gt = makeGt({{1, 2, 3, 4}, {5, 6, 7, 8}});
    // Query 0 retrieves 2 of the top-4; query 1 retrieves 4 of 4.
    const auto rs = makeResults({{1, 2, 99, 98}, {8, 7, 6, 5}});
    EXPECT_DOUBLE_EQ(recallMAtK(gt, rs, 4), (0.5 + 1.0) / 2.0);
}

TEST(Recall, RmRequiresEnoughGroundTruth)
{
    const auto gt = makeGt({{1, 2}});
    const auto rs = makeResults({{1, 2}});
    EXPECT_THROW(recallMAtK(gt, rs, 3), ConfigError);
}

TEST(Recall, MismatchedQueryCountThrows)
{
    const auto gt = makeGt({{1}});
    const auto rs = makeResults({{1}, {2}});
    EXPECT_THROW(recall1AtK(gt, rs), ConfigError);
}

TEST(Recall, EmptyResultsScoreZero)
{
    const auto gt = makeGt({{1, 2}});
    ResultSet rs{{}};
    EXPECT_DOUBLE_EQ(recall1AtK(gt, rs), 0.0);
    EXPECT_DOUBLE_EQ(recallMAtK(gt, rs, 2), 0.0);
}

} // namespace
} // namespace juno
