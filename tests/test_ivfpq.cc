/** @file Tests for the FAISS-style IVFPQ baseline. */
#include <gtest/gtest.h>

#include "baseline/flat_index.h"
#include "baseline/ivfpq_index.h"
#include "common/logging.h"
#include "dataset/ground_truth.h"
#include "dataset/recall.h"
#include "dataset/synthetic.h"

namespace juno {
namespace {

Dataset
clusteredData(Metric metric = Metric::kL2, idx_t n = 1500, idx_t dim = 16)
{
    SyntheticSpec spec;
    spec.kind = metric == Metric::kL2 ? DatasetKind::kDeepLike
                                      : DatasetKind::kTtiLike;
    spec.num_points = n;
    spec.num_queries = 20;
    spec.dim = dim;
    spec.components = 16;
    spec.seed = 44;
    return makeDataset(spec);
}

IvfPqIndex::Params
smallParams()
{
    IvfPqIndex::Params params;
    params.clusters = 24;
    params.pq_subspaces = 8;
    params.pq_entries = 32;
    params.nprobs = 6;
    return params;
}

TEST(IvfPq, ReasonableRecallOnClusteredData)
{
    const auto ds = clusteredData();
    IvfPqIndex index(Metric::kL2, ds.base.view(), smallParams());
    const auto gt = computeGroundTruth(Metric::kL2, ds.base.view(),
                                       ds.queries.view(), 10);
    index.setNprobs(24); // probe everything; only PQ error remains
    const auto results = index.search(ds.queries.view(), 100);
    EXPECT_GE(recall1AtK(gt, results), 0.85);
}

TEST(IvfPq, RecallMonotoneInNprobs)
{
    const auto ds = clusteredData();
    IvfPqIndex index(Metric::kL2, ds.base.view(), smallParams());
    const auto gt = computeGroundTruth(Metric::kL2, ds.base.view(),
                                       ds.queries.view(), 10);
    double prev = -1.0;
    for (idx_t nprobs : {1, 4, 24}) {
        index.setNprobs(nprobs);
        const double r =
            recall1AtK(gt, index.search(ds.queries.view(), 50));
        EXPECT_GE(r, prev - 0.05) << "nprobs " << nprobs;
        prev = r;
    }
}

TEST(IvfPq, InnerProductRecall)
{
    const auto ds = clusteredData(Metric::kInnerProduct);
    auto params = smallParams();
    IvfPqIndex index(Metric::kInnerProduct, ds.base.view(), params);
    const auto gt = computeGroundTruth(Metric::kInnerProduct,
                                       ds.base.view(), ds.queries.view(),
                                       10);
    index.setNprobs(24);
    const auto results = index.search(ds.queries.view(), 100);
    EXPECT_GE(recall1AtK(gt, results), 0.7);
}

TEST(IvfPq, StageTimersCoverThreeStages)
{
    const auto ds = clusteredData();
    IvfPqIndex index(Metric::kL2, ds.base.view(), smallParams());
    index.search(ds.queries.view(), 10);
    EXPECT_GT(index.stageTimers().seconds("filter"), 0.0);
    EXPECT_GT(index.stageTimers().seconds("lut"), 0.0);
    EXPECT_GT(index.stageTimers().seconds("scan"), 0.0);
}

TEST(IvfPq, NameReflectsConfiguration)
{
    const auto ds = clusteredData();
    IvfPqIndex index(Metric::kL2, ds.base.view(), smallParams());
    EXPECT_EQ(index.name(), "IVF24,PQ8");
}

TEST(IvfPq, HnswRouterNameAndRecall)
{
    const auto ds = clusteredData();
    auto params = smallParams();
    params.use_hnsw_router = true;
    params.nprobs = 8;
    IvfPqIndex index(Metric::kL2, ds.base.view(), params);
    EXPECT_TRUE(index.hasHnswRouter());
    EXPECT_EQ(index.name(), "IVF24_HNSW,PQ8");

    const auto gt = computeGroundTruth(Metric::kL2, ds.base.view(),
                                       ds.queries.view(), 10);
    const auto results = index.search(ds.queries.view(), 100);
    // Router recall should be close to brute-force probing.
    IvfPqIndex brute(Metric::kL2, ds.base.view(), smallParams());
    brute.setNprobs(8);
    const auto brute_results = brute.search(ds.queries.view(), 100);
    EXPECT_GE(recall1AtK(gt, results),
              recall1AtK(gt, brute_results) - 0.15);
}

TEST(IvfPq, UsageRecordingCountsTopKEncodings)
{
    const auto ds = clusteredData();
    auto params = smallParams();
    IvfPqIndex index(Metric::kL2, ds.base.view(), params);
    std::vector<std::vector<std::uint32_t>> usage;
    const auto result =
        index.searchOneRecordingUsage(ds.queries.row(0), 50, &usage);
    ASSERT_EQ(usage.size(), 8u);

    // Total usage per subspace equals the number of returned points.
    for (int s = 0; s < 8; ++s) {
        std::uint64_t total = 0;
        for (auto c : usage[static_cast<std::size_t>(s)])
            total += c;
        EXPECT_EQ(total, result.size());
    }
}

TEST(IvfPq, UsageIsSparse)
{
    // The motivation claim (Sec. 3.2): the top-k use only a small
    // fraction of codebook entries per subspace.
    const auto ds = clusteredData(Metric::kL2, 3000);
    auto params = smallParams();
    params.pq_entries = 64;
    params.nprobs = 24;
    IvfPqIndex index(Metric::kL2, ds.base.view(), params);
    std::vector<std::vector<std::uint32_t>> usage;
    index.searchOneRecordingUsage(ds.queries.row(0), 100, &usage);
    double used_fraction = 0.0;
    for (const auto &row : usage) {
        int used = 0;
        for (auto c : row)
            used += c > 0;
        used_fraction +=
            static_cast<double>(used) / static_cast<double>(row.size());
    }
    used_fraction /= static_cast<double>(usage.size());
    EXPECT_LT(used_fraction, 0.6);
}

TEST(IvfPq, SearchOneMatchesBatchSearch)
{
    const auto ds = clusteredData();
    IvfPqIndex index(Metric::kL2, ds.base.view(), smallParams());
    const auto batch = index.search(ds.queries.view(), 10);
    const auto one = index.searchOneRecordingUsage(ds.queries.row(0), 10,
                                                   nullptr);
    EXPECT_EQ(batch[0], one);
}

TEST(IvfPq, RejectsBadConfigs)
{
    const auto ds = clusteredData();
    auto params = smallParams();
    params.nprobs = 0;
    EXPECT_THROW(IvfPqIndex(Metric::kL2, ds.base.view(), params),
                 ConfigError);
    params = smallParams();
    params.pq_subspaces = 5; // 16 % 5 != 0
    EXPECT_THROW(IvfPqIndex(Metric::kL2, ds.base.view(), params),
                 ConfigError);
}

} // namespace
} // namespace juno
