// Checked numeric parsing (common/parse.h): the trust boundary for
// CLI flags and env knobs. The interesting cases are the ones plain
// std::stol/stod get wrong — trailing junk, overflow, inf/nan — plus
// the byte-size suffix overflow UBSan would flag as signed-multiply UB.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "common/parse.h"
#include "serve/hot_list_cache.h"

namespace juno {
namespace {

TEST(ParseInt64, AcceptsPlainIntegers)
{
    EXPECT_EQ(parseInt64("0").value(), 0);
    EXPECT_EQ(parseInt64("42").value(), 42);
    EXPECT_EQ(parseInt64("-17").value(), -17);
    EXPECT_EQ(parseInt64("+9").value(), 9);
}

TEST(ParseInt64, AcceptsInt64Extremes)
{
    EXPECT_EQ(parseInt64("9223372036854775807").value(),
              std::numeric_limits<std::int64_t>::max());
    EXPECT_EQ(parseInt64("-9223372036854775808").value(),
              std::numeric_limits<std::int64_t>::min());
}

TEST(ParseInt64, RejectsOverflow)
{
    // One past the extremes: std::stol would throw out_of_range,
    // unchecked strtol would silently saturate. Both must just fail.
    EXPECT_FALSE(parseInt64("9223372036854775808").has_value());
    EXPECT_FALSE(parseInt64("-9223372036854775809").has_value());
    EXPECT_FALSE(parseInt64("99999999999999999999999999").has_value());
}

TEST(ParseInt64, RejectsJunk)
{
    EXPECT_FALSE(parseInt64("").has_value());
    EXPECT_FALSE(parseInt64("ten").has_value());
    EXPECT_FALSE(parseInt64("12x").has_value());   // trailing junk
    EXPECT_FALSE(parseInt64("1 2").has_value());   // embedded space
    EXPECT_FALSE(parseInt64(" 7").has_value());    // leading space
    EXPECT_FALSE(parseInt64("7 ").has_value());    // trailing space
    EXPECT_FALSE(parseInt64("1.5").has_value());   // not an integer
    EXPECT_FALSE(parseInt64("0x10").has_value());  // no hex at the CLI
    EXPECT_FALSE(parseInt64("-").has_value());
}

TEST(ParseInt64InRange, EnforcesInclusiveBounds)
{
    EXPECT_EQ(parseInt64InRange("5", 0, 10).value(), 5);
    EXPECT_EQ(parseInt64InRange("0", 0, 10).value(), 0);
    EXPECT_EQ(parseInt64InRange("10", 0, 10).value(), 10);
    EXPECT_FALSE(parseInt64InRange("-1", 0, 10).has_value());
    EXPECT_FALSE(parseInt64InRange("11", 0, 10).has_value());
    // Range check must not mask a parse failure.
    EXPECT_FALSE(parseInt64InRange("abc", 0, 10).has_value());
}

TEST(ParseFloat64, AcceptsFiniteNumbers)
{
    EXPECT_DOUBLE_EQ(parseFloat64("1.5").value(), 1.5);
    EXPECT_DOUBLE_EQ(parseFloat64("-0.25").value(), -0.25);
    EXPECT_DOUBLE_EQ(parseFloat64("3").value(), 3.0);
    EXPECT_DOUBLE_EQ(parseFloat64("1e3").value(), 1000.0);
    EXPECT_DOUBLE_EQ(parseFloat64("-2.5E-2").value(), -0.025);
}

TEST(ParseFloat64, RejectsNonFinite)
{
    // strtod happily parses these; no knob in this codebase wants
    // them, and NaN silently poisons threshold comparisons.
    EXPECT_FALSE(parseFloat64("inf").has_value());
    EXPECT_FALSE(parseFloat64("-inf").has_value());
    EXPECT_FALSE(parseFloat64("nan").has_value());
    EXPECT_FALSE(parseFloat64("1e999").has_value()); // overflow to inf
}

TEST(ParseFloat64, RejectsJunk)
{
    EXPECT_FALSE(parseFloat64("").has_value());
    EXPECT_FALSE(parseFloat64("fast").has_value());
    EXPECT_FALSE(parseFloat64("1.5x").has_value());
    EXPECT_FALSE(parseFloat64(" 1.5").has_value());
    EXPECT_FALSE(parseFloat64("1.5 ").has_value());
}

TEST(ParseFloat64, AllowsDenormalUnderflow)
{
    // Underflow to a denormal (or zero) is an acceptable rounding,
    // not an error — only overflow to infinity fails.
    const auto v = parseFloat64("1e-320");
    ASSERT_TRUE(v.has_value());
    EXPECT_GE(*v, 0.0);
    EXPECT_LT(*v, 1e-300);
}

TEST(ParseByteSize, AcceptsSuffixes)
{
    EXPECT_EQ(parseByteSize("0").value(), 0);
    EXPECT_EQ(parseByteSize("512").value(), 512);
    EXPECT_EQ(parseByteSize("4k").value(), std::int64_t(4) << 10);
    EXPECT_EQ(parseByteSize("4K").value(), std::int64_t(4) << 10);
    EXPECT_EQ(parseByteSize("64m").value(), std::int64_t(64) << 20);
    EXPECT_EQ(parseByteSize("2G").value(), std::int64_t(2) << 30);
}

TEST(ParseByteSize, RejectsNegativeAndJunk)
{
    EXPECT_FALSE(parseByteSize("").has_value());
    EXPECT_FALSE(parseByteSize("-1").has_value());
    EXPECT_FALSE(parseByteSize("-4k").has_value());
    EXPECT_FALSE(parseByteSize("k").has_value());   // suffix only
    EXPECT_FALSE(parseByteSize("4t").has_value());  // unknown suffix
    EXPECT_FALSE(parseByteSize("4kb").has_value()); // trailing junk
    EXPECT_FALSE(parseByteSize("4 k").has_value());
    EXPECT_FALSE(parseByteSize("lots").has_value());
}

TEST(ParseByteSize, RejectsOverflowAfterScaling)
{
    // 2^63-1 bytes parses plain but overflows once any suffix scales
    // it; the guard must fire BEFORE the multiply (signed overflow is
    // UB, and the UBSan preset turns it into an abort).
    EXPECT_EQ(parseByteSize("9223372036854775807").value(),
              std::numeric_limits<std::int64_t>::max());
    EXPECT_FALSE(parseByteSize("9223372036854775807k").has_value());
    EXPECT_FALSE(parseByteSize("9007199254740992g").has_value());
    EXPECT_FALSE(parseByteSize("99999999999999999999").has_value());
    // Largest value that survives a g suffix: (2^63-1) >> 30.
    EXPECT_EQ(parseByteSize("8589934591g").value(),
              std::int64_t(8589934591) << 30);
}

TEST(ParseByteSize, HotListCacheWrapperKeepsLegacyContract)
{
    // HotListCache::parseByteSize is the -1-on-error façade over the
    // same parser; JUNO_MEM_BUDGET handling depends on that contract.
    EXPECT_EQ(HotListCache::parseByteSize("64m"), std::int64_t(64) << 20);
    EXPECT_EQ(HotListCache::parseByteSize("bogus"), -1);
    EXPECT_EQ(HotListCache::parseByteSize("-5"), -1);
    EXPECT_EQ(HotListCache::parseByteSize("9223372036854775807g"), -1);
}

} // namespace
} // namespace juno
