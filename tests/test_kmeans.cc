/** @file Tests for Lloyd k-means with k-means++ seeding. */
#include <gtest/gtest.h>

#include <set>

#include "cluster/kmeans.h"
#include "common/distance.h"
#include "common/logging.h"
#include "common/rng.h"

namespace juno {
namespace {

/** Four well-separated 2-D blobs. */
FloatMatrix
fourBlobs(idx_t per_blob, Rng &rng)
{
    const float centers[4][2] = {{0, 0}, {10, 0}, {0, 10}, {10, 10}};
    FloatMatrix pts(4 * per_blob, 2);
    for (int b = 0; b < 4; ++b)
        for (idx_t i = 0; i < per_blob; ++i) {
            const idx_t row = b * per_blob + i;
            pts.at(row, 0) =
                centers[b][0] + static_cast<float>(rng.gaussian(0, 0.3));
            pts.at(row, 1) =
                centers[b][1] + static_cast<float>(rng.gaussian(0, 0.3));
        }
    return pts;
}

TEST(KMeans, RecoversSeparatedBlobs)
{
    Rng rng(5);
    const auto pts = fourBlobs(50, rng);
    KMeansParams params;
    params.clusters = 4;
    params.max_iters = 30;
    const auto res = kmeans(pts.view(), params);

    ASSERT_EQ(res.centroids.rows(), 4);
    // Every centroid should sit near one blob center and all four blobs
    // should be claimed.
    std::set<int> claimed;
    const float centers[4][2] = {{0, 0}, {10, 0}, {0, 10}, {10, 10}};
    for (idx_t c = 0; c < 4; ++c) {
        float best = 1e30f;
        int best_b = -1;
        for (int b = 0; b < 4; ++b) {
            const float d2 = l2Sqr(res.centroids.row(c), centers[b], 2);
            if (d2 < best) {
                best = d2;
                best_b = b;
            }
        }
        EXPECT_LT(best, 1.0f);
        claimed.insert(best_b);
    }
    EXPECT_EQ(claimed.size(), 4u);
}

TEST(KMeans, LabelsCoverAllInputPoints)
{
    Rng rng(7);
    const auto pts = fourBlobs(25, rng);
    KMeansParams params;
    params.clusters = 4;
    const auto res = kmeans(pts.view(), params);
    ASSERT_EQ(res.labels.size(), 100u);
    for (cluster_t l : res.labels) {
        EXPECT_GE(l, 0);
        EXPECT_LT(l, 4);
    }
}

TEST(KMeans, LabelsMatchNearestCentroid)
{
    Rng rng(9);
    const auto pts = fourBlobs(25, rng);
    KMeansParams params;
    params.clusters = 4;
    const auto res = kmeans(pts.view(), params);
    const auto reassigned = assignToNearest(pts.view(),
                                            res.centroids.view());
    EXPECT_EQ(res.labels, reassigned);
}

TEST(KMeans, ObjectiveImprovesOverSingleIteration)
{
    Rng rng(11);
    const auto pts = fourBlobs(50, rng);
    KMeansParams one;
    one.clusters = 4;
    one.max_iters = 1;
    one.tol = 0.0;
    KMeansParams many = one;
    many.max_iters = 25;
    const auto res_one = kmeans(pts.view(), one);
    const auto res_many = kmeans(pts.view(), many);
    EXPECT_LE(res_many.objective, res_one.objective + 1e-9);
}

TEST(KMeans, NoEmptyClustersOnDegenerateData)
{
    // 10 identical points, 4 clusters: repair must still assign all.
    FloatMatrix pts(10, 2, 1.0f);
    KMeansParams params;
    params.clusters = 4;
    const auto res = kmeans(pts.view(), params);
    EXPECT_EQ(res.centroids.rows(), 4);
    // All points land in some cluster and the objective is ~0.
    EXPECT_NEAR(res.objective, 0.0, 1e-6);
}

TEST(KMeans, TrainingSubsampleStillAssignsEveryone)
{
    Rng rng(13);
    const auto pts = fourBlobs(100, rng);
    KMeansParams params;
    params.clusters = 4;
    params.max_training_points = 40;
    const auto res = kmeans(pts.view(), params);
    EXPECT_EQ(res.labels.size(), 400u);
    // Subsampled training should still find the blob structure.
    EXPECT_LT(res.objective / 400.0, 1.0);
}

TEST(KMeans, DeterministicForSeed)
{
    Rng rng(15);
    const auto pts = fourBlobs(30, rng);
    KMeansParams params;
    params.clusters = 3;
    params.seed = 2024;
    const auto a = kmeans(pts.view(), params);
    const auto b = kmeans(pts.view(), params);
    EXPECT_EQ(a.labels, b.labels);
    EXPECT_DOUBLE_EQ(a.objective, b.objective);
}

TEST(KMeans, KEqualsNPinsEachPoint)
{
    Rng rng(17);
    FloatMatrix pts(8, 2);
    for (idx_t i = 0; i < 8; ++i) {
        pts.at(i, 0) = static_cast<float>(i) * 5.0f;
        pts.at(i, 1) = 0.0f;
    }
    KMeansParams params;
    params.clusters = 8;
    params.max_iters = 20;
    const auto res = kmeans(pts.view(), params);
    EXPECT_NEAR(res.objective, 0.0, 1e-6);
    std::set<cluster_t> distinct(res.labels.begin(), res.labels.end());
    EXPECT_EQ(distinct.size(), 8u);
}

TEST(KMeans, RejectsBadConfigs)
{
    FloatMatrix pts(5, 2, 0.0f);
    KMeansParams params;
    params.clusters = 0;
    EXPECT_THROW(kmeans(pts.view(), params), ConfigError);
    params.clusters = 6;
    EXPECT_THROW(kmeans(pts.view(), params), ConfigError);
}

TEST(KMeans, AssignToNearestRejectsDimMismatch)
{
    FloatMatrix pts(2, 3), centroids(2, 2);
    EXPECT_THROW(assignToNearest(pts.view(), centroids.view()), ConfigError);
}

} // namespace
} // namespace juno
