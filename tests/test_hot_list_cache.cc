/**
 * @file
 * Out-of-core serving tests: the admission-controlled HotListCache in
 * isolation (budgets, admission, eviction, entry lifetime, byte-size
 * parsing), the madvise/mincore helpers, and the end-to-end contract
 * that matters most — cached and uncached searches of mapped IVFPQ
 * and IVF-Flat snapshots return bitwise-identical results across
 * thread counts and under every budget, including budgets too small
 * to pin a single list.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baseline/ivfflat_index.h"
#include "baseline/ivfpq_index.h"
#include "common/mmap_blob.h"
#include "dataset/synthetic.h"
#include "registry/index_factory.h"
#include "serve/hot_list_cache.h"

namespace juno {
namespace {

std::string
tempPath(const std::string &name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

Dataset
makeData()
{
    SyntheticSpec spec;
    spec.kind = DatasetKind::kDeepLike;
    spec.num_points = 1500;
    spec.num_queries = 12;
    spec.dim = 12;
    spec.components = 10;
    spec.seed = 606;
    return makeDataset(spec);
}

SearchResults
searchWith(AnnIndex &index, FloatMatrixView queries, idx_t k,
           int threads)
{
    SearchRequest request(queries, k);
    request.options.threads = threads;
    return index.search(request);
}

// ---------------------------------------------------------------------
// Cache unit tier
// ---------------------------------------------------------------------

TEST(HotListCache, BudgetZeroDisablesEverything)
{
    HotListCache cache(0, 16);
    EXPECT_FALSE(cache.enabled());
    EXPECT_EQ(cache.budget(), 0u);

    const std::vector<std::uint8_t> payload(64, 0xAB);
    cache.offer(3, payload.data(), payload.size(), nullptr, 0);
    EXPECT_EQ(cache.find(3), nullptr);

    const auto c = cache.counters();
    EXPECT_EQ(c.admitted, 0u);
    EXPECT_EQ(c.pinned_bytes, 0u);
    EXPECT_EQ(c.resident_lists, 0u);
}

TEST(HotListCache, ListLargerThanBudgetIsRejectedNotPartiallyPinned)
{
    HotListCache cache(100, 8);
    const std::vector<std::uint8_t> big(200, 0x11);
    cache.find(0); // make it the hottest list; size still wins
    cache.offer(0, big.data(), big.size(), nullptr, 0);
    EXPECT_EQ(cache.find(0), nullptr);

    const auto c = cache.counters();
    EXPECT_EQ(c.rejected_capacity, 1u);
    EXPECT_EQ(c.admitted, 0u);
    EXPECT_EQ(c.pinned_bytes, 0u);
}

TEST(HotListCache, AdmitsVerbatimCopiesOfBothPlanes)
{
    HotListCache cache(1024, 8);
    std::vector<std::uint8_t> primary(96);
    std::vector<std::uint8_t> secondary(32);
    for (std::size_t i = 0; i < primary.size(); ++i)
        primary[i] = static_cast<std::uint8_t>(i * 7);
    for (std::size_t i = 0; i < secondary.size(); ++i)
        secondary[i] = static_cast<std::uint8_t>(255 - i);

    cache.find(5);
    cache.offer(5, primary.data(), primary.size(), secondary.data(),
                secondary.size());
    const auto entry = cache.find(5);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->primary, primary);
    EXPECT_EQ(entry->secondary, secondary);
    EXPECT_EQ(entry->bytes(), primary.size() + secondary.size());

    const auto c = cache.counters();
    EXPECT_EQ(c.admitted, 1u);
    EXPECT_EQ(c.resident_lists, 1u);
    EXPECT_EQ(c.pinned_bytes, primary.size() + secondary.size());
}

TEST(HotListCache, EvictionUnderChurnRespectsBudgetAndFrequency)
{
    // Budget fits exactly two 64-byte lists. List 0 is made clearly
    // hot; churning cold lists through must never displace it and the
    // pinned total must never exceed the budget.
    HotListCache cache(128, 32);
    const std::vector<std::uint8_t> payload(64, 0x5A);
    for (int i = 0; i < 16; ++i)
        cache.find(0);
    cache.offer(0, payload.data(), payload.size(), nullptr, 0);
    ASSERT_NE(cache.find(0), nullptr);

    for (cluster_t list = 1; list < 20; ++list) {
        cache.find(list);
        cache.offer(list, payload.data(), payload.size(), nullptr, 0);
        const auto c = cache.counters();
        EXPECT_LE(c.pinned_bytes, 128u);
        EXPECT_LE(c.resident_lists, 2u);
    }

    // The hot list survived the churn; the cold slots cycled.
    EXPECT_NE(cache.find(0), nullptr);
    const auto c = cache.counters();
    EXPECT_GE(c.admitted, 2u);
    EXPECT_GE(c.evicted + c.rejected_policy, 1u);
}

TEST(HotListCache, EvictedEntryStaysValidForInFlightReaders)
{
    HotListCache cache(64, 8);
    std::vector<std::uint8_t> payload(64);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i);
    cache.find(1);
    cache.offer(1, payload.data(), payload.size(), nullptr, 0);
    const auto held = cache.find(1);
    ASSERT_NE(held, nullptr);

    // Displace list 1 with a hotter list of the same size.
    for (int i = 0; i < 8; ++i)
        cache.find(2);
    cache.offer(2, payload.data(), payload.size(), nullptr, 0);
    EXPECT_EQ(cache.find(1), nullptr);

    // The held shared_ptr still reads the original bytes.
    EXPECT_EQ(held->primary, payload);
}

// TSan regression stress: readers, writers and the implicit evictions
// all funnel through one mutex; under budget pressure every offer()
// can displace what a concurrent find() just handed out. The entry
// lifetime contract under fire: a held EntryPtr keeps its exact bytes
// after eviction, budget and counter invariants hold at every
// concurrent counters() sample.
TEST(HotListCache, ConcurrentFindOfferEvictChurn)
{
    constexpr int kThreads = 4;
    constexpr int kOpsPer = 800;
    constexpr std::size_t kListBytes = 64;
    // Budget fits two lists: constant eviction churn.
    HotListCache cache(2 * kListBytes, 16);

    // Each list's payload is filled with its own id, so a reader can
    // verify a handed-out entry end-to-end no matter when the list
    // was evicted underneath it.
    auto payloadFor = [](cluster_t list) {
        return std::vector<std::uint8_t>(
            kListBytes, static_cast<std::uint8_t>(list));
    };

    std::atomic<bool> go{false};
    std::atomic<std::uint64_t> validated{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            while (!go.load())
                std::this_thread::yield();
            for (int i = 0; i < kOpsPer; ++i) {
                // Skewed traffic: low thread ids hammer low lists so
                // admission has real frequency differences to act on.
                const auto list =
                    static_cast<cluster_t>((t + i) % (4 + 3 * t));
                const auto entry = cache.find(list);
                if (entry != nullptr) {
                    // Held entries stay bitwise-intact across any
                    // concurrent eviction (shared ownership).
                    ASSERT_EQ(entry->primary, payloadFor(list));
                    validated.fetch_add(1);
                } else {
                    const auto payload = payloadFor(list);
                    cache.offer(list, payload.data(), payload.size(),
                                nullptr, 0);
                }
                if (i % 64 == 0) {
                    const auto c = cache.counters();
                    EXPECT_LE(c.pinned_bytes, 2 * kListBytes);
                    EXPECT_LE(c.resident_lists, 2u);
                    EXPECT_EQ(c.hits + c.misses, c.lookups);
                }
            }
        });
    go.store(true);
    for (auto &t : threads)
        t.join();

    const auto c = cache.counters();
    EXPECT_EQ(c.lookups,
              static_cast<std::uint64_t>(kThreads) * kOpsPer);
    EXPECT_EQ(c.hits + c.misses, c.lookups);
    EXPECT_EQ(c.hits, validated.load());
    EXPECT_LE(c.pinned_bytes, 2 * kListBytes);
    // The churn actually exercised the eviction path.
    EXPECT_GE(c.admitted, 2u);
    EXPECT_GE(c.evicted + c.rejected_policy, 1u);
}

TEST(HotListCache, ParseByteSize)
{
    EXPECT_EQ(HotListCache::parseByteSize("1048576"), 1048576);
    EXPECT_EQ(HotListCache::parseByteSize("0"), 0);
    EXPECT_EQ(HotListCache::parseByteSize("64k"), 64LL << 10);
    EXPECT_EQ(HotListCache::parseByteSize("64K"), 64LL << 10);
    EXPECT_EQ(HotListCache::parseByteSize("512m"), 512LL << 20);
    EXPECT_EQ(HotListCache::parseByteSize("2G"), 2LL << 30);
    EXPECT_EQ(HotListCache::parseByteSize(""), -1);
    EXPECT_EQ(HotListCache::parseByteSize("junk"), -1);
    EXPECT_EQ(HotListCache::parseByteSize("12q"), -1);
    EXPECT_EQ(HotListCache::parseByteSize("-5"), -1);
}

// ---------------------------------------------------------------------
// madvise / mincore helper tier
// ---------------------------------------------------------------------

TEST(MemAdvise, EmptyAndNullRangesAreSafeNoOps)
{
    EXPECT_FALSE(memAdvise(nullptr, 0, MemAdvice::kWillNeed));
    EXPECT_EQ(memResidentFraction(nullptr, 0), -1.0);
}

TEST(MemAdvise, MappedBlobAdviseAndResidency)
{
    const auto path = tempPath("advise.bin");
    {
        std::ofstream out(path, std::ios::binary);
        std::vector<char> bytes(3 * 4096, 'x');
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }
    const auto blob = MappedBlob::map(path);
    ASSERT_NE(blob, nullptr);

    // Advice is best-effort: assert it does not crash and that the
    // clamping keeps out-of-range sections harmless.
    blob->advise(0, blob->size(), MemAdvice::kWillNeed);
    blob->advise(blob->size() + 4096, 64, MemAdvice::kWillNeed);
    blob->advise(0, blob->size(), MemAdvice::kRandom);

    // Touch every page, then residency must read as fully resident on
    // platforms with mincore (or be unsupported, never out of range).
    std::size_t sum = 0;
    for (std::size_t i = 0; i < blob->size(); i += 512)
        sum += blob->data()[i];
    EXPECT_GT(sum, 0u);
    const double resident = blob->residentFraction(0, blob->size());
    EXPECT_TRUE(resident == -1.0 ||
                (resident >= 0.0 && resident <= 1.0));

    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// End-to-end parity tier: cached vs uncached searches must be
// bitwise identical, for mapped snapshots, across thread counts.
// ---------------------------------------------------------------------

void
expectBudgetParity(const std::string &spec)
{
    SCOPED_TRACE(spec);
    const auto ds = makeData();
    auto built = buildIndex(Metric::kL2, ds.base.view(), spec);
    const auto path = tempPath("ooc_parity.juno");
    built->save(path);
    auto index = openIndex(path); // mmap mode by default

    // The uncached reference (budget 0 forces pure-mmap regardless of
    // any JUNO_MEM_BUDGET in the environment).
    ASSERT_TRUE(index->setMemoryBudget(0));
    EXPECT_EQ(index->hotListCache(), nullptr);
    const auto expected = searchWith(*index, ds.queries.view(), 15, 1);

    for (const std::int64_t budget : {64LL, 64LL << 10, 16LL << 20}) {
        SCOPED_TRACE("budget " + std::to_string(budget));
        ASSERT_TRUE(index->setMemoryBudget(budget));
        const auto cache = index->hotListCache();
        ASSERT_NE(cache, nullptr);
        EXPECT_EQ(cache->budget(), static_cast<std::size_t>(budget));
        // Two passes: the first runs cold and populates the cache,
        // the second serves hits. Both must match, on 1 and 4
        // threads.
        for (int pass = 0; pass < 2; ++pass) {
            EXPECT_EQ(searchWith(*index, ds.queries.view(), 15, 1),
                      expected);
            EXPECT_EQ(searchWith(*index, ds.queries.view(), 15, 4),
                      expected);
        }
        // A 64-byte budget is smaller than any list: everything must
        // have been rejected, never partially pinned.
        if (budget == 64) {
            const auto c = cache->counters();
            EXPECT_EQ(c.admitted, 0u);
            EXPECT_EQ(c.pinned_bytes, 0u);
        }
    }

    // Detaching returns to the pure-mmap path, still at parity.
    ASSERT_TRUE(index->setMemoryBudget(0));
    EXPECT_EQ(index->hotListCache(), nullptr);
    EXPECT_EQ(searchWith(*index, ds.queries.view(), 15, 1), expected);

    std::remove(path.c_str());
}

TEST(OutOfCoreParity, IvfPqFastScanMappedSnapshot)
{
    expectBudgetParity("ivfpq:nlist=16,m=6,entries=16,nprobe=6");
}

TEST(OutOfCoreParity, IvfPqFloatTierMappedSnapshot)
{
    expectBudgetParity("ivfpq:nlist=16,m=6,entries=32,nprobe=6");
}

TEST(OutOfCoreParity, IvfFlatMappedSnapshot)
{
    expectBudgetParity("ivfflat:nlist=16,nprobe=6");
}

TEST(OutOfCoreParity, InMemoryIndexAlsoSupportsBudgets)
{
    // The cache engages whether or not the planes are mapped (an
    // in-memory index gains nothing but must stay correct).
    const auto ds = makeData();
    auto index = buildIndex(Metric::kL2, ds.base.view(),
                            "ivfpq:nlist=16,m=6,entries=16,nprobe=6");
    const auto expected = searchWith(*index, ds.queries.view(), 10, 1);
    ASSERT_TRUE(index->setMemoryBudget(1 << 20));
    EXPECT_EQ(searchWith(*index, ds.queries.view(), 10, 1), expected);
    EXPECT_EQ(searchWith(*index, ds.queries.view(), 10, 1), expected);
}

TEST(OutOfCoreParity, IndexTypesWithoutAnIoAwarePathDecline)
{
    const auto ds = makeData();
    auto flat = buildIndex(Metric::kL2, ds.base.view(), "flat");
    EXPECT_FALSE(flat->setMemoryBudget(1 << 20));
    EXPECT_EQ(flat->hotListCache(), nullptr);
    // Declining must not disturb searching.
    const auto expected = searchWith(*flat, ds.queries.view(), 5, 1);
    EXPECT_EQ(searchWith(*flat, ds.queries.view(), 5, 1), expected);
}

} // namespace
} // namespace juno
