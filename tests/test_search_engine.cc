/**
 * @file
 * Tests of the batched query engine: parallel-vs-serial determinism
 * for every index type, chunking invariance, option handling and the
 * stats toggle.
 */
#include <gtest/gtest.h>

#include <thread>

#include "baseline/flat_index.h"
#include "baseline/hnsw.h"
#include "baseline/ivfflat_index.h"
#include "baseline/ivfpq_index.h"
#include "common/logging.h"
#include "core/juno_index.h"
#include "core/rt_exact_index.h"
#include "dataset/synthetic.h"
#include "engine/query_engine.h"

namespace juno {
namespace {

Dataset
smallDataset()
{
    SyntheticSpec spec;
    spec.kind = DatasetKind::kDeepLike;
    spec.num_points = 600;
    spec.num_queries = 23; // deliberately not a multiple of any chunk
    spec.dim = 8;
    spec.seed = 4242;
    return makeDataset(spec);
}

SearchRequest
request(const Dataset &ds, idx_t k, int threads, idx_t batch_size = 0)
{
    SearchRequest req;
    req.queries = ds.queries.view();
    req.options.k = k;
    req.options.threads = threads;
    req.options.batch_size = batch_size;
    return req;
}

/** threads=4 must return bitwise-identical lists to threads=1. */
void
expectDeterministic(AnnIndex &index, const Dataset &ds, idx_t k)
{
    const auto serial = index.search(request(ds, k, 1));
    const auto parallel = index.search(request(ds, k, 4));
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t q = 0; q < serial.size(); ++q)
        EXPECT_EQ(serial[q], parallel[q]) << "query " << q;
    // Chunking must not change results either.
    const auto chunked = index.search(request(ds, k, 4, 3));
    for (std::size_t q = 0; q < serial.size(); ++q)
        EXPECT_EQ(serial[q], chunked[q]) << "query " << q;
}

TEST(SearchEngine, FlatDeterministicAcrossThreads)
{
    const auto ds = smallDataset();
    FlatIndex index(ds.metric, ds.base.view());
    expectDeterministic(index, ds, 10);
}

TEST(SearchEngine, IvfFlatDeterministicAcrossThreads)
{
    const auto ds = smallDataset();
    IvfFlatIndex::Params params;
    params.clusters = 16;
    params.nprobs = 4;
    IvfFlatIndex index(ds.metric, ds.base.view(), params);
    expectDeterministic(index, ds, 10);
}

TEST(SearchEngine, IvfPqDeterministicAcrossThreads)
{
    const auto ds = smallDataset();
    IvfPqIndex::Params params;
    params.clusters = 16;
    params.pq_subspaces = 4;
    params.pq_entries = 16;
    params.nprobs = 4;
    IvfPqIndex index(ds.metric, ds.base.view(), params);
    expectDeterministic(index, ds, 10);
}

TEST(SearchEngine, IvfPqHnswRouterDeterministicAcrossThreads)
{
    const auto ds = smallDataset();
    IvfPqIndex::Params params;
    params.clusters = 16;
    params.pq_subspaces = 4;
    params.pq_entries = 16;
    params.nprobs = 4;
    params.use_hnsw_router = true;
    IvfPqIndex index(ds.metric, ds.base.view(), params);
    expectDeterministic(index, ds, 10);
}

TEST(SearchEngine, HnswDeterministicAcrossThreads)
{
    const auto ds = smallDataset();
    Hnsw index;
    Hnsw::Params params;
    params.m = 8;
    index.build(ds.metric, ds.base.view(), params);
    index.setEfSearch(64);
    expectDeterministic(index, ds, 10);
}

TEST(SearchEngine, JunoDeterministicAcrossThreads)
{
    const auto ds = smallDataset();
    JunoParams params = junoPresetH();
    params.clusters = 16;
    params.pq_entries = 16;
    params.nprobs = 4;
    params.density_grid = 20;
    params.policy.train_samples = 40;
    params.policy.ref_samples = 300;
    params.policy.contain_topk = 20;
    JunoIndex index(ds.metric, ds.base.view(), params);
    expectDeterministic(index, ds, 10);
}

TEST(SearchEngine, JunoPipelinedDeterministicAcrossThreads)
{
    const auto ds = smallDataset();
    JunoParams params = junoPresetH();
    params.clusters = 16;
    params.pq_entries = 16;
    params.nprobs = 4;
    params.density_grid = 20;
    params.policy.train_samples = 40;
    params.policy.ref_samples = 300;
    params.policy.contain_topk = 20;
    params.pipelined = true;
    JunoIndex index(ds.metric, ds.base.view(), params);
    expectDeterministic(index, ds, 10);
}

TEST(SearchEngine, RtExactDeterministicAcrossThreads)
{
    const auto ds = smallDataset();
    RtExactIndex index(ds.base.view());
    expectDeterministic(index, ds, 5);
}

TEST(SearchEngine, HnswIndexInterfaceReportsShape)
{
    const auto ds = smallDataset();
    Hnsw index;
    index.build(ds.metric, ds.base.view(), {});
    EXPECT_EQ(index.size(), ds.base.rows());
    EXPECT_EQ(index.dim(), ds.base.cols());
    EXPECT_NE(index.name().find("HNSW"), std::string::npos);
    const auto results = index.search(ds.queries.view(), 5);
    ASSERT_EQ(results.size(), static_cast<std::size_t>(ds.queries.rows()));
    for (const auto &r : results)
        EXPECT_EQ(r.size(), 5u);
}

TEST(SearchEngine, StatsToggleSkipsLedger)
{
    const auto ds = smallDataset();
    FlatIndex index(ds.metric, ds.base.view());

    SearchRequest req = request(ds, 5, 2);
    req.options.collect_stats = false;
    index.search(req);
    EXPECT_EQ(index.stageTimers().totalSeconds(), 0.0);

    req.options.collect_stats = true;
    index.search(req);
    EXPECT_GT(index.stageTimers().totalSeconds(), 0.0);
}

TEST(SearchEngine, StageTimersAccumulateAcrossParallelBatch)
{
    const auto ds = smallDataset();
    IvfFlatIndex::Params params;
    params.clusters = 16;
    params.nprobs = 4;
    IvfFlatIndex index(ds.metric, ds.base.view(), params);
    index.search(request(ds, 10, 4, 2));
    // Every worker's filter+scan time must land in the merged ledger.
    EXPECT_GT(index.stageTimers().seconds("filter"), 0.0);
    EXPECT_GT(index.stageTimers().seconds("scan"), 0.0);
}

TEST(SearchEngine, RejectsBadRequests)
{
    const auto ds = smallDataset();
    FlatIndex index(ds.metric, ds.base.view());
    EXPECT_THROW(index.search(request(ds, -1, 1)), ConfigError);
    FloatMatrix wrong(3, ds.base.cols() + 2);
    SearchRequest req;
    req.queries = wrong.view();
    req.options.k = 1;
    EXPECT_THROW(index.search(req), ConfigError);
}

TEST(SearchEngine, EmptyBatchReturnsEmpty)
{
    const auto ds = smallDataset();
    FlatIndex index(ds.metric, ds.base.view());
    SearchRequest req;
    req.queries = FloatMatrixView(nullptr, 0, ds.base.cols());
    req.options.k = 3;
    EXPECT_TRUE(index.search(req).empty());
}

/**
 * Degenerate requests must behave identically for every index type:
 * empty batch -> empty results; k == 0 -> one empty list per query;
 * k > numPoints -> truncated lists with valid, distinct ids.
 */
void
expectDegenerateContract(AnnIndex &index, const Dataset &ds)
{
    // Empty batch: no results, even with a zero-column view.
    SearchRequest empty;
    empty.queries = FloatMatrixView(nullptr, 0, 0);
    empty.options.k = 5;
    EXPECT_TRUE(index.search(empty).empty()) << index.name();

    // k == 0: one empty neighbour list per query.
    const auto zero_k = index.search(request(ds, 0, 1));
    ASSERT_EQ(zero_k.size(),
              static_cast<std::size_t>(ds.queries.rows()))
        << index.name();
    for (const auto &res : zero_k)
        EXPECT_TRUE(res.empty()) << index.name();

    // k far beyond the index size: truncated, ids valid and distinct.
    const idx_t n = index.size();
    const auto huge_k = index.search(request(ds, n + 100, 2));
    ASSERT_EQ(huge_k.size(),
              static_cast<std::size_t>(ds.queries.rows()))
        << index.name();
    for (const auto &res : huge_k) {
        EXPECT_LE(static_cast<idx_t>(res.size()), n) << index.name();
        std::vector<bool> seen(static_cast<std::size_t>(n), false);
        for (const auto &nb : res) {
            ASSERT_GE(nb.id, 0) << index.name();
            ASSERT_LT(nb.id, n) << index.name();
            EXPECT_FALSE(seen[static_cast<std::size_t>(nb.id)])
                << index.name() << " duplicate id " << nb.id;
            seen[static_cast<std::size_t>(nb.id)] = true;
        }
    }
}

TEST(SearchEngine, DegenerateRequestsUniformAcrossIndexTypes)
{
    const auto ds = smallDataset();

    FlatIndex flat(ds.metric, ds.base.view());
    expectDegenerateContract(flat, ds);
    // The exact scan must return every point when k exceeds N.
    const auto all = flat.search(request(ds, flat.size() + 7, 1));
    for (const auto &res : all)
        EXPECT_EQ(static_cast<idx_t>(res.size()), flat.size());

    IvfFlatIndex::Params ivf_params;
    ivf_params.clusters = 16;
    ivf_params.nprobs = 4;
    IvfFlatIndex ivfflat(ds.metric, ds.base.view(), ivf_params);
    expectDegenerateContract(ivfflat, ds);

    IvfPqIndex::Params pq_params;
    pq_params.clusters = 16;
    pq_params.pq_subspaces = 4;
    pq_params.nprobs = 4;
    IvfPqIndex ivfpq(ds.metric, ds.base.view(), pq_params);
    expectDegenerateContract(ivfpq, ds);

    Hnsw hnsw;
    Hnsw::Params hnsw_params;
    hnsw_params.m = 8;
    hnsw.build(ds.metric, ds.base.view(), hnsw_params);
    expectDegenerateContract(hnsw, ds);

    JunoParams juno_params = junoPresetH();
    juno_params.clusters = 16;
    juno_params.pq_entries = 16;
    juno_params.nprobs = 4;
    juno_params.density_grid = 20;
    juno_params.policy.train_samples = 40;
    juno_params.policy.ref_samples = 300;
    juno_params.policy.contain_topk = 20;
    JunoIndex juno(ds.metric, ds.base.view(), juno_params);
    expectDegenerateContract(juno, ds);

    RtExactIndex rt(ds.base.view());
    expectDegenerateContract(rt, ds);
}

TEST(SearchEngine, ZeroThreadsPicksHardwareConcurrency)
{
    const auto ds = smallDataset();
    FlatIndex index(ds.metric, ds.base.view());
    const auto serial = index.search(request(ds, 5, 1));
    const auto auto_threads = index.search(request(ds, 5, 0));
    EXPECT_GE(index.lastSearchThreads(), 1);
    for (std::size_t q = 0; q < serial.size(); ++q)
        EXPECT_EQ(serial[q], auto_threads[q]);
}

TEST(SearchEngine, ChunkResolutionRespectsRequestAndGrain)
{
    EXPECT_EQ(QueryEngine::resolveChunk(100, 4, 7), 7);  // explicit
    EXPECT_GE(QueryEngine::resolveChunk(100, 4, 0), 4);  // min grain
    EXPECT_GE(QueryEngine::resolveChunk(3, 8, 0), 3);    // tiny batch
    EXPECT_EQ(QueryEngine::resolveThreads(3), 3);
    EXPECT_GE(QueryEngine::resolveThreads(0), 1);
}

/**
 * The serving layer's read-path contract: search() may be called from
 * several caller threads at once on one index, each caller getting
 * results identical to a serial reference run.
 */
void
expectConcurrentCallersMatchSerial(AnnIndex &index, const Dataset &ds,
                                   idx_t k, int caller_threads)
{
    const auto reference = index.search(request(ds, k, 1));
    constexpr int kCallers = 4;
    constexpr int kRepeats = 8;
    std::vector<int> mismatches(kCallers, 0);
    std::vector<std::thread> callers;
    for (int c = 0; c < kCallers; ++c)
        callers.emplace_back([&, c] {
            for (int rep = 0; rep < kRepeats; ++rep) {
                const auto got =
                    index.search(request(ds, k, caller_threads));
                if (got != reference)
                    ++mismatches[static_cast<std::size_t>(c)];
            }
        });
    for (auto &t : callers)
        t.join();
    for (int c = 0; c < kCallers; ++c)
        EXPECT_EQ(mismatches[static_cast<std::size_t>(c)], 0)
            << index.name() << " caller " << c;
}

TEST(SearchEngine, ConcurrentCallersFlat)
{
    const auto ds = smallDataset();
    FlatIndex index(ds.metric, ds.base.view());
    expectConcurrentCallersMatchSerial(index, ds, 10, 1);
}

TEST(SearchEngine, ConcurrentCallersIvfFlat)
{
    const auto ds = smallDataset();
    IvfFlatIndex::Params params;
    params.clusters = 16;
    params.nprobs = 4;
    IvfFlatIndex index(ds.metric, ds.base.view(), params);
    expectConcurrentCallersMatchSerial(index, ds, 10, 1);
}

TEST(SearchEngine, ConcurrentCallersJuno)
{
    const auto ds = smallDataset();
    JunoParams params = junoPresetH();
    params.clusters = 16;
    params.pq_entries = 16;
    params.nprobs = 4;
    params.density_grid = 20;
    params.policy.train_samples = 40;
    params.policy.ref_samples = 300;
    params.policy.contain_topk = 20;
    JunoIndex index(ds.metric, ds.base.view(), params);
    expectConcurrentCallersMatchSerial(index, ds, 10, 1);
}

TEST(SearchEngine, ConcurrentMultiThreadedCallers)
{
    // Multi-threaded requests serialise on the worker pool but must
    // still interleave correctly with each other and with inline
    // callers.
    const auto ds = smallDataset();
    FlatIndex index(ds.metric, ds.base.view());
    expectConcurrentCallersMatchSerial(index, ds, 10, 2);
}

TEST(SearchEngine, ConcurrentCallersAccumulateStats)
{
    const auto ds = smallDataset();
    FlatIndex index(ds.metric, ds.base.view());
    index.resetStageTimers();
    constexpr int kCallers = 3;
    std::vector<std::thread> callers;
    for (int c = 0; c < kCallers; ++c)
        callers.emplace_back(
            [&] { index.search(request(ds, 5, 1)); });
    for (auto &t : callers)
        t.join();
    // All callers' scan time must land in the shared ledger (merged
    // under the engine's sink lock, not lost to a race).
    EXPECT_GT(index.stageTimers().seconds("scan"), 0.0);
}

TEST(SearchEngine, ReusedResultsBufferMatchesFreshOne)
{
    const auto ds = smallDataset();
    FlatIndex index(ds.metric, ds.base.view());
    const auto fresh = index.search(request(ds, 10, 1));

    SearchResults reused;
    index.search(request(ds, 10, 1), reused);
    EXPECT_EQ(reused, fresh);
    // Second pass through the same buffer (the serving layer's
    // steady state) must overwrite every slot, not append.
    index.search(request(ds, 10, 2), reused);
    EXPECT_EQ(reused, fresh);

    // Degenerate k == 0 through a dirty buffer must clear the lists.
    index.search(request(ds, 0, 1), reused);
    ASSERT_EQ(reused.size(), static_cast<std::size_t>(ds.queries.rows()));
    for (const auto &list : reused)
        EXPECT_TRUE(list.empty());
}

TEST(VisitedSetScratch, InsertAndEpochClear)
{
    VisitedSet visited;
    visited.reset(10);
    EXPECT_TRUE(visited.insert(3));
    EXPECT_FALSE(visited.insert(3));
    EXPECT_TRUE(visited.contains(3));
    EXPECT_FALSE(visited.contains(4));
    visited.clear();
    EXPECT_FALSE(visited.contains(3));
    EXPECT_TRUE(visited.insert(3));
}

} // namespace
} // namespace juno
