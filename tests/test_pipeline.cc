/** @file Tests for the two-stage pipeline executor. */
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/pipeline.h"

namespace juno {
namespace {

TEST(Pipeline, SequentialProcessesInOrder)
{
    std::vector<idx_t> order;
    auto stage1 = [&](idx_t i) { order.push_back(i * 2); };
    auto stage2 = [&](idx_t i) { order.push_back(i * 2 + 1); };
    const auto result = runTwoStagePipeline(3, stage1, stage2, false);
    const std::vector<idx_t> expect{0, 1, 2, 3, 4, 5};
    EXPECT_EQ(order, expect);
    EXPECT_GE(result.wall_seconds, 0.0);
}

TEST(Pipeline, PipelinedProcessesEveryItemOnce)
{
    std::vector<std::atomic<int>> s1(20), s2(20);
    auto stage1 = [&](idx_t i) {
        s1[static_cast<std::size_t>(i)].fetch_add(1);
    };
    auto stage2 = [&](idx_t i) {
        s2[static_cast<std::size_t>(i)].fetch_add(1);
    };
    runTwoStagePipeline(20, stage1, stage2, true);
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(s1[static_cast<std::size_t>(i)].load(), 1);
        EXPECT_EQ(s2[static_cast<std::size_t>(i)].load(), 1);
    }
}

TEST(Pipeline, Stage2SeesStage1Output)
{
    std::vector<int> buffer(10, 0);
    std::vector<int> consumed(10, 0);
    auto stage1 = [&](idx_t i) {
        buffer[static_cast<std::size_t>(i)] = static_cast<int>(i) + 100;
    };
    auto stage2 = [&](idx_t i) {
        consumed[static_cast<std::size_t>(i)] =
            buffer[static_cast<std::size_t>(i)];
    };
    runTwoStagePipeline(10, stage1, stage2, true);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(consumed[static_cast<std::size_t>(i)], i + 100);
}

TEST(Pipeline, BusyTimesAreMeasured)
{
    auto spin = [](idx_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    };
    const auto result = runTwoStagePipeline(5, spin, spin, false);
    EXPECT_GE(result.stage1_seconds, 0.008);
    EXPECT_GE(result.stage2_seconds, 0.008);
    EXPECT_GE(result.wall_seconds,
              result.stage1_seconds + result.stage2_seconds - 0.01);
}

TEST(Pipeline, ModelledBoundsAreConsistent)
{
    PipelineResult r;
    r.stage1_seconds = 3.0;
    r.stage2_seconds = 1.0;
    EXPECT_DOUBLE_EQ(r.modelledPipelinedSeconds(), 3.0);
    EXPECT_DOUBLE_EQ(r.modelledSequentialSeconds(), 4.0);
}

TEST(Pipeline, PipelinedWallAtMostSequentialPlusSlack)
{
    // With sleep-bound stages, overlapping must not be slower than the
    // strict sum (allow generous scheduling slack on loaded hosts).
    auto sleepy = [](idx_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
    };
    const auto seq = runTwoStagePipeline(8, sleepy, sleepy, false);
    const auto pipe = runTwoStagePipeline(8, sleepy, sleepy, true);
    EXPECT_LT(pipe.wall_seconds, seq.wall_seconds * 1.5);
}

TEST(Pipeline, ZeroAndSingleItem)
{
    int calls = 0;
    auto count = [&](idx_t) { ++calls; };
    runTwoStagePipeline(0, count, count, true);
    EXPECT_EQ(calls, 0);
    runTwoStagePipeline(1, count, count, true);
    EXPECT_EQ(calls, 2);
}

} // namespace
} // namespace juno
