/** @file Unit tests for the metrics registry (obs/metrics.h). */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/stats.h"
#include "obs/metrics.h"

namespace juno {
namespace {

TEST(MetricsRegistry, CounterGetOrCreateSharesState)
{
    MetricsRegistry reg;
    auto a = reg.counter("juno_test_total", "test counter");
    auto b = reg.counter("juno_test_total", "test counter");
    EXPECT_EQ(a.get(), b.get());
    a->inc();
    b->inc(2);
    EXPECT_EQ(a->value(), 3u);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, KindMismatchThrows)
{
    MetricsRegistry reg;
    reg.counter("juno_test_total", "test counter");
    EXPECT_THROW(reg.gauge("juno_test_total", "now a gauge"),
                 ConfigError);
    EXPECT_THROW(reg.histogram("juno_test_total", "now a histogram"),
                 ConfigError);
}

TEST(MetricsRegistry, InvalidNameThrows)
{
    MetricsRegistry reg;
    EXPECT_THROW(reg.counter("juno test", "spaces"), ConfigError);
    EXPECT_THROW(reg.counter("", "empty"), ConfigError);
    EXPECT_THROW(reg.counter("9starts_with_digit", "digit"),
                 ConfigError);
}

TEST(MetricsRegistry, GaugeSetAndAdd)
{
    MetricsRegistry reg;
    auto g = reg.gauge("juno_test_gauge", "test gauge");
    g->set(2.5);
    g->add(1.5);
    EXPECT_DOUBLE_EQ(g->value(), 4.0);
}

TEST(MetricsRegistry, CallbackRegistrationIsRaii)
{
    MetricsRegistry reg;
    {
        auto handle = reg.counterCallback("juno_cb_total", "cb",
                                          [] { return 7u; });
        EXPECT_EQ(reg.size(), 1u);
        EXPECT_NE(reg.renderPrometheus().find("juno_cb_total 7"),
                  std::string::npos);
    }
    EXPECT_EQ(reg.size(), 0u);
}

TEST(MetricsRegistry, ReplacedRegistrationOldHandleNoOps)
{
    // Re-registering a name replaces the entry; the superseded
    // handle's destructor must not tear down the replacement.
    MetricsRegistry reg;
    auto first = reg.gaugeCallback("juno_cb_gauge", "cb",
                                   [] { return 1.0; });
    auto second = reg.gaugeCallback("juno_cb_gauge", "cb",
                                    [] { return 2.0; });
    first.release();
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_NE(reg.renderPrometheus().find("juno_cb_gauge 2"),
              std::string::npos);
}

TEST(MetricsRegistry, PrometheusFormat)
{
    MetricsRegistry reg;
    reg.counter("juno_req_total", "Requests")->inc(5);
    auto info = reg.info("juno_build_info", "Build",
                         {{"git_sha", "abc"}, {"compiler", "gcc"}});
    const std::string text = reg.renderPrometheus();
    EXPECT_NE(text.find("# HELP juno_req_total Requests\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE juno_req_total counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("juno_req_total 5\n"), std::string::npos);
    EXPECT_NE(
        text.find(
            "juno_build_info{git_sha=\"abc\",compiler=\"gcc\"} 1\n"),
        std::string::npos);
    // Exposition ends with a newline (required by the text format).
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.back(), '\n');
}

TEST(MetricsRegistry, SummaryCallbackRendersQuantiles)
{
    MetricsRegistry reg;
    auto handle = reg.summaryCallback("juno_lat_us", "Latency", [] {
        HistogramSummary s;
        s.count = 10;
        s.mean = 4.0;
        s.p50 = 3.0;
        s.p95 = 9.0;
        s.p99 = 9.9;
        s.max = 10.0;
        return s;
    });
    const std::string text = reg.renderPrometheus();
    EXPECT_NE(text.find("# TYPE juno_lat_us summary"),
              std::string::npos);
    EXPECT_NE(text.find("juno_lat_us{quantile=\"0.5\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("juno_lat_us_count 10"), std::string::npos);
}

TEST(MetricsRegistry, JsonExportParsesAsKeyValue)
{
    MetricsRegistry reg;
    reg.counter("juno_a_total", "a")->inc(3);
    reg.gauge("juno_b", "b")->set(1.5);
    const std::string json = reg.renderJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"juno_a_total\":3"), std::string::npos);
    EXPECT_NE(json.find("\"juno_b\":1.5"), std::string::npos);
}

TEST(MetricsRegistry, HistogramQuantilesMatchQuantileSketch)
{
    MetricsRegistry reg;
    auto h = reg.histogram("juno_hist", "hist");
    QuantileSketch reference;
    for (int i = 1; i <= 1000; ++i) {
        h->observe(static_cast<double>(i));
        reference.add(static_cast<double>(i));
    }
    const HistogramSummary s = h->summary();
    EXPECT_EQ(s.count, 1000u);
    EXPECT_DOUBLE_EQ(s.mean, reference.mean());
    EXPECT_DOUBLE_EQ(s.p50, reference.quantile(0.50));
    EXPECT_DOUBLE_EQ(s.p95, reference.quantile(0.95));
    EXPECT_DOUBLE_EQ(s.p99, reference.quantile(0.99));
    EXPECT_DOUBLE_EQ(s.max, reference.quantile(1.0));
}

TEST(MetricsRegistry, ConcurrentRecordingLosesNothing)
{
    // The TSan leg runs this too: concurrent inc/observe against the
    // sharded histogram and atomic counter must be race-free, and the
    // merged summary must see every observation.
    MetricsRegistry reg;
    auto c = reg.counter("juno_mt_total", "mt");
    auto h = reg.histogram("juno_mt_hist", "mt");
    constexpr int kThreads = 4;
    constexpr int kPerThread = 2000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                c->inc();
                h->observe(static_cast<double>(t * kPerThread + i));
            }
            // Export racing with recording must also be clean.
            if (t == 0)
                (void)reg.renderPrometheus();
        });
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(c->value(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(h->summary().count,
              static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistry, ClearDropsEntriesAndHandlesNoOp)
{
    MetricsRegistry reg;
    auto handle =
        reg.counterCallback("juno_cb_total", "cb", [] { return 1u; });
    reg.counter("juno_owned_total", "owned");
    reg.clear();
    EXPECT_EQ(reg.size(), 0u);
    handle.release(); // must not throw or resurrect anything
    EXPECT_EQ(reg.size(), 0u);
}

TEST(MetricsRegistry, GlobalIsSingleton)
{
    EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

TEST(MetricsRegistry, LabeledCounterFamilySharesOneHelpTypeBlock)
{
    MetricsRegistry reg;
    std::uint64_t full = 3, expired = 9;
    auto r1 = reg.counterCallback("juno_shed_total",
                                  {{"reason", "queue_full"}}, "Shed",
                                  [&] { return full; });
    auto r2 = reg.counterCallback("juno_shed_total",
                                  {{"reason", "expired"}}, "Shed",
                                  [&] { return expired; });
    const std::string text = reg.renderPrometheus();
    // Both samples present, with their label sets...
    EXPECT_NE(text.find("juno_shed_total{reason=\"queue_full\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("juno_shed_total{reason=\"expired\"} 9"),
              std::string::npos);
    // ...under exactly one HELP and one TYPE line for the family (a
    // repeated TYPE for the same metric is an invalid exposition).
    auto countOf = [&](const std::string &needle) {
        std::size_t n = 0, pos = 0;
        while ((pos = text.find(needle, pos)) != std::string::npos) {
            ++n;
            pos += needle.size();
        }
        return n;
    };
    EXPECT_EQ(countOf("# TYPE juno_shed_total counter"), 1u);
    EXPECT_EQ(countOf("# HELP juno_shed_total"), 1u);
    // JSON export keys each sample by its full labeled name.
    const std::string json = reg.renderJson();
    EXPECT_NE(json.find("juno_shed_total{reason=\\\"expired\\\"}"),
              std::string::npos);
}

TEST(MetricsRegistry, LabeledCounterValidatesBaseNameOnly)
{
    MetricsRegistry reg;
    // The base must still be a legal metric name even though the full
    // key carries braces and quotes.
    EXPECT_THROW(reg.counterCallback("bad name", {{"a", "b"}}, "h",
                                     [] { return std::uint64_t{0}; }),
                 ConfigError);
    auto ok = reg.counterCallback("good_name", {{"a", "b"}}, "h",
                                  [] { return std::uint64_t{1}; });
    EXPECT_EQ(reg.size(), 1u);
}

} // namespace
} // namespace juno
