/** @file Tests for the 8-bit scalar quantizer. */
#include <gtest/gtest.h>

#include <cmath>

#include "common/distance.h"
#include "common/logging.h"
#include "common/rng.h"
#include "quant/scalar_quantizer.h"

namespace juno {
namespace {

FloatMatrix
randomVectors(idx_t n, idx_t d, std::uint64_t seed)
{
    Rng rng(seed);
    FloatMatrix m(n, d);
    for (idx_t i = 0; i < n; ++i)
        for (idx_t j = 0; j < d; ++j)
            m.at(i, j) = rng.uniform(-2.0f, 2.0f);
    return m;
}

TEST(ScalarQuantizer, TrainSetsDim)
{
    const auto data = randomVectors(100, 16, 1);
    ScalarQuantizer sq;
    sq.train(data.view());
    EXPECT_TRUE(sq.trained());
    EXPECT_EQ(sq.dim(), 16);
}

TEST(ScalarQuantizer, ReconstructionErrorBoundedByStep)
{
    const auto data = randomVectors(300, 8, 2);
    ScalarQuantizer sq;
    sq.train(data.view());
    // Max error per dim is step/2 ~= 4/255/2; squared and summed over 8
    // dims gives a tight bound.
    const double bound = 8 * std::pow(4.0 / 255.0 / 2.0 * 1.01, 2.0);
    std::vector<std::uint8_t> codes(8);
    std::vector<float> rec(8);
    for (idx_t i = 0; i < data.rows(); ++i) {
        sq.encodeOne(data.row(i), codes.data());
        sq.decodeOne(codes.data(), rec.data());
        EXPECT_LE(l2Sqr(data.row(i), rec.data(), 8), bound);
    }
}

TEST(ScalarQuantizer, EncodeBatchShape)
{
    const auto data = randomVectors(50, 4, 3);
    ScalarQuantizer sq;
    sq.train(data.view());
    const auto codes = sq.encode(data.view());
    EXPECT_EQ(codes.size(), 200u);
}

TEST(ScalarQuantizer, L2ToCodeMatchesDecodedDistance)
{
    const auto data = randomVectors(100, 8, 4);
    ScalarQuantizer sq;
    sq.train(data.view());
    const auto query = randomVectors(1, 8, 99);
    std::vector<std::uint8_t> codes(8);
    std::vector<float> rec(8);
    for (idx_t i = 0; i < 20; ++i) {
        sq.encodeOne(data.row(i), codes.data());
        sq.decodeOne(codes.data(), rec.data());
        EXPECT_NEAR(sq.l2SqrToCode(query.row(0), codes.data()),
                    l2Sqr(query.row(0), rec.data(), 8), 1e-4f);
        EXPECT_NEAR(sq.ipToCode(query.row(0), codes.data()),
                    innerProduct(query.row(0), rec.data(), 8), 1e-4f);
    }
}

TEST(ScalarQuantizer, RankingMostlyPreserved)
{
    // SQ distortion must not destroy coarse ranking: the true NN stays
    // within the top few by quantized distance.
    const auto data = randomVectors(500, 16, 5);
    ScalarQuantizer sq;
    sq.train(data.view());
    const auto codes = sq.encode(data.view());
    const auto query = randomVectors(1, 16, 98);

    idx_t true_nn = 0;
    float best = 1e30f;
    for (idx_t i = 0; i < 500; ++i) {
        const float d = l2Sqr(query.row(0), data.row(i), 16);
        if (d < best) {
            best = d;
            true_nn = i;
        }
    }
    // Rank of the true NN under quantized distances.
    const float nn_qd =
        sq.l2SqrToCode(query.row(0), codes.data() + true_nn * 16);
    int better = 0;
    for (idx_t i = 0; i < 500; ++i)
        better += sq.l2SqrToCode(query.row(0), codes.data() + i * 16) <
                  nn_qd;
    EXPECT_LE(better, 3);
}

TEST(ScalarQuantizer, ThreeSigmaModeHandlesOutliers)
{
    Rng rng(6);
    FloatMatrix data(300, 4);
    for (idx_t i = 0; i < 300; ++i)
        for (idx_t j = 0; j < 4; ++j)
            data.at(i, j) = static_cast<float>(rng.gaussian(0.0, 1.0));
    data.at(0, 0) = 1000.0f; // single wild outlier

    ScalarQuantizer minmax, robust;
    minmax.train(data.view(), ScalarQuantizer::RangeMode::kMinMax);
    robust.train(data.view(), ScalarQuantizer::RangeMode::kThreeSigma);
    // The robust range gives far lower error on the inliers.
    const auto inliers = data.view().slice(1, 299);
    EXPECT_LT(robust.reconstructionError(inliers),
              minmax.reconstructionError(inliers) * 0.5);
}

TEST(ScalarQuantizer, ConstantDimensionSurvives)
{
    FloatMatrix data(10, 2, 3.0f);
    ScalarQuantizer sq;
    sq.train(data.view());
    std::vector<std::uint8_t> codes(2);
    std::vector<float> rec(2);
    sq.encodeOne(data.row(0), codes.data());
    sq.decodeOne(codes.data(), rec.data());
    EXPECT_NEAR(rec[0], 3.0f, 1e-4f);
}

TEST(ScalarQuantizer, RejectsMisuse)
{
    ScalarQuantizer sq;
    FloatMatrix empty;
    EXPECT_THROW(sq.train(empty.view()), ConfigError);
    const auto data = randomVectors(10, 4, 7);
    sq.train(data.view());
    FloatMatrix wrong(2, 6);
    EXPECT_THROW(sq.encode(wrong.view()), ConfigError);
}

} // namespace
} // namespace juno
