/**
 * @file Parameterized end-to-end property sweep: every combination of
 * metric x search mode x execution path must produce deterministic,
 * well-formed results with sane recall, and tighter budgets must never
 * increase the RT work done.
 */
#include <gtest/gtest.h>

#include <tuple>

#include "core/juno_index.h"
#include "dataset/ground_truth.h"
#include "dataset/recall.h"
#include "dataset/synthetic.h"

namespace juno {
namespace {

struct SharedData {
    Dataset l2_data;
    Dataset ip_data;
    GroundTruth l2_gt;
    GroundTruth ip_gt;

    SharedData()
    {
        SyntheticSpec spec;
        spec.kind = DatasetKind::kDeepLike;
        spec.num_points = 1500;
        spec.num_queries = 16;
        spec.dim = 12;
        spec.components = 12;
        spec.seed = 3131;
        l2_data = makeDataset(spec);
        l2_gt = computeGroundTruth(Metric::kL2, l2_data.base.view(),
                                   l2_data.queries.view(), 50);

        spec.kind = DatasetKind::kTtiLike;
        spec.seed = 3132;
        ip_data = makeDataset(spec);
        ip_gt = computeGroundTruth(Metric::kInnerProduct,
                                   ip_data.base.view(),
                                   ip_data.queries.view(), 50);
    }
};

SharedData &
shared()
{
    static SharedData data;
    return data;
}

using Config = std::tuple<Metric, SearchMode, bool /*use_rt*/>;

class JunoConfigSweep : public ::testing::TestWithParam<Config> {
  protected:
    static JunoParams
    params(SearchMode mode, bool use_rt)
    {
        JunoParams p;
        p.clusters = 16;
        p.pq_entries = 32;
        p.nprobs = 8;
        p.mode = mode;
        p.use_rt_core = use_rt;
        p.density_grid = 30;
        p.policy.train_samples = 60;
        p.policy.ref_samples = 800;
        p.policy.contain_topk = 40;
        return p;
    }
};

TEST_P(JunoConfigSweep, WellFormedDeterministicAndSane)
{
    const auto [metric, mode, use_rt] = GetParam();
    auto &data = shared();
    const Dataset &ds =
        metric == Metric::kL2 ? data.l2_data : data.ip_data;
    const GroundTruth &gt = metric == Metric::kL2 ? data.l2_gt : data.ip_gt;

    JunoIndex index(metric, ds.base.view(), params(mode, use_rt));
    const auto first = index.search(ds.queries.view(), 50);
    const auto second = index.search(ds.queries.view(), 50);

    // Determinism.
    EXPECT_EQ(first, second);

    // Well-formedness: ids unique and in range, results ordered.
    const Metric order = mode == SearchMode::kExactDistance
                             ? metric
                             : Metric::kInnerProduct;
    for (const auto &row : first) {
        ASSERT_FALSE(row.empty());
        std::set<idx_t> seen;
        for (std::size_t i = 0; i < row.size(); ++i) {
            EXPECT_GE(row[i].id, 0);
            EXPECT_LT(row[i].id, ds.base.rows());
            EXPECT_TRUE(seen.insert(row[i].id).second);
            if (i > 0) {
                EXPECT_FALSE(isBetter(order, row[i].score,
                                      row[i - 1].score))
                    << "results not best-first at rank " << i;
            }
        }
    }

    // Sanity: even approximate modes must beat random guessing by far.
    // Exception encoded from the paper (Sec. 6.2, TTI1M): hit-count
    // selection under inner product "rapidly drops" in quality because
    // intersecting implies L2 closeness, not similarity — so JUNO-L on
    // MIPS only gets a weak floor.
    const bool weak_combo = metric == Metric::kInnerProduct &&
                            mode != SearchMode::kExactDistance;
    const double r = recall1AtK(gt, first);
    EXPECT_GE(r, weak_combo ? 0.05 : 0.3)
        << metricName(metric) << " " << searchModeName(mode);
}

std::string
configName(const ::testing::TestParamInfo<Config> &info)
{
    const Metric metric = std::get<0>(info.param);
    const SearchMode mode = std::get<1>(info.param);
    const bool use_rt = std::get<2>(info.param);
    std::string name = metric == Metric::kL2 ? "L2" : "IP";
    name += mode == SearchMode::kExactDistance      ? "_H"
            : mode == SearchMode::kRewardPenalty ? "_M"
                                                 : "_L";
    name += use_rt ? "_bvh" : "_linear";
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, JunoConfigSweep,
    ::testing::Combine(
        ::testing::Values(Metric::kL2, Metric::kInnerProduct),
        ::testing::Values(SearchMode::kExactDistance,
                          SearchMode::kRewardPenalty,
                          SearchMode::kHitCount),
        ::testing::Values(true, false)),
    configName);

/** Scale sweep: RT hits must be monotone in the threshold scale. */
class ScaleMonotone : public ::testing::TestWithParam<double> {};

TEST_P(ScaleMonotone, HitsShrinkWithScale)
{
    auto &data = shared();
    static JunoIndex index(Metric::kL2, data.l2_data.base.view(), [] {
        JunoParams p;
        p.clusters = 16;
        p.pq_entries = 32;
        p.nprobs = 8;
        p.density_grid = 30;
        p.policy.train_samples = 60;
        p.policy.ref_samples = 800;
        p.policy.contain_topk = 40;
        return p;
    }());

    const double scale = GetParam();
    index.setThresholdScale(1.0);
    index.device().resetStats();
    index.search(data.l2_data.queries.view(), 20);
    const auto full = index.rtStats().hits;

    index.setThresholdScale(scale);
    index.device().resetStats();
    index.search(data.l2_data.queries.view(), 20);
    const auto scaled = index.rtStats().hits;
    EXPECT_LE(scaled, full);
}

INSTANTIATE_TEST_SUITE_P(Scales, ScaleMonotone,
                         ::testing::Values(0.9, 0.7, 0.5, 0.3, 0.1));

/** k boundary cases. */
TEST(JunoEdgeCases, KAsLargeAsN)
{
    auto &data = shared();
    JunoParams p;
    p.clusters = 16;
    p.pq_entries = 32;
    p.nprobs = 16; // everything
    p.density_grid = 30;
    p.policy.train_samples = 60;
    p.policy.ref_samples = 800;
    p.policy.contain_topk = 40;
    JunoIndex index(Metric::kL2, data.l2_data.base.view(), p);
    const auto results =
        index.search(data.l2_data.queries.view().slice(0, 2),
                     data.l2_data.base.rows() * 2);
    for (const auto &row : results) {
        EXPECT_LE(static_cast<idx_t>(row.size()),
                  data.l2_data.base.rows());
        EXPECT_GT(row.size(), 100u); // wide gates touch most points
    }
}

TEST(JunoEdgeCases, QueriesIdenticalToBasePoints)
{
    auto &data = shared();
    JunoParams p = junoPresetH();
    p.clusters = 16;
    p.pq_entries = 32;
    p.nprobs = 8;
    p.density_grid = 30;
    p.policy.train_samples = 60;
    p.policy.ref_samples = 800;
    p.policy.contain_topk = 40;
    JunoIndex index(Metric::kL2, data.l2_data.base.view(), p);
    const auto results =
        index.search(data.l2_data.base.view().slice(0, 10), 10);
    int self_found = 0;
    for (std::size_t q = 0; q < results.size(); ++q)
        for (const auto &nb : results[q])
            if (nb.id == static_cast<idx_t>(q)) {
                ++self_found;
                break;
            }
    EXPECT_GE(self_found, 8);
}

} // namespace
} // namespace juno
