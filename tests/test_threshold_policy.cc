/** @file Tests for the dynamic threshold policy. */
#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "core/threshold_policy.h"

namespace juno {
namespace {

/** Clustered 2-subspace vectors (dim 4) with a dense and sparse blob. */
FloatMatrix
clusteredVectors(idx_t n, std::uint64_t seed)
{
    Rng rng(seed);
    FloatMatrix m(n, 4);
    for (idx_t i = 0; i < n; ++i) {
        const bool dense = rng.uniform() < 0.8;
        const float cx = dense ? 0.0f : 3.0f;
        const float sigma = dense ? 0.1f : 0.8f;
        for (int s = 0; s < 2; ++s) {
            m.at(i, 2 * s) =
                cx + static_cast<float>(rng.gaussian(0.0, sigma));
            m.at(i, 2 * s + 1) =
                static_cast<float>(rng.gaussian(0.0, sigma));
        }
    }
    return m;
}

struct PolicyFixture {
    FloatMatrix vectors;
    DensityMap density;
    ThresholdPolicy policy;

    explicit PolicyFixture(Metric metric, idx_t n = 2000)
        : vectors(clusteredVectors(n, 71))
    {
        density.build(vectors.view(), 2, 40);
        ThresholdPolicy::Params params;
        params.train_samples = 100;
        params.ref_samples = 1000;
        params.contain_topk = 50;
        policy.train(metric, vectors.view(), 2, density, params);
    }
};

TEST(ThresholdPolicy, TrainedStateAndRanges)
{
    PolicyFixture fx(Metric::kL2);
    EXPECT_TRUE(fx.policy.trained());
    EXPECT_EQ(fx.policy.numSubspaces(), 2);
    for (int s = 0; s < 2; ++s) {
        EXPECT_GT(fx.policy.minThreshold(s), 0.0);
        EXPECT_GE(fx.policy.maxThreshold(s), fx.policy.minThreshold(s));
    }
}

TEST(ThresholdPolicy, DynamicThresholdWithinTrainingRange)
{
    PolicyFixture fx(Metric::kL2);
    for (int s = 0; s < 2; ++s) {
        const double thr = fx.policy.threshold(s, 0.0f, 0.0f);
        EXPECT_GE(thr, fx.policy.minThreshold(s) - 1e-9);
        EXPECT_LE(thr, fx.policy.maxThreshold(s) + 1e-9);
    }
}

TEST(ThresholdPolicy, DenseRegionGetsTighterThreshold)
{
    // The Fig. 7(a) correlation: density up -> threshold down.
    PolicyFixture fx(Metric::kL2, 4000);
    const double dense_thr = fx.policy.threshold(0, 0.0f, 0.0f);
    const double sparse_thr = fx.policy.threshold(0, 3.0f, 0.0f);
    EXPECT_LT(dense_thr, sparse_thr);
}

TEST(ThresholdPolicy, StaticModesReturnExtremes)
{
    PolicyFixture fx(Metric::kL2);
    fx.policy.setMode(ThresholdMode::kStaticSmall);
    EXPECT_DOUBLE_EQ(fx.policy.threshold(0, 0.0f, 0.0f),
                     fx.policy.minThreshold(0));
    fx.policy.setMode(ThresholdMode::kStaticLarge);
    EXPECT_DOUBLE_EQ(fx.policy.threshold(0, 0.0f, 0.0f),
                     fx.policy.maxThreshold(0));
}

TEST(ThresholdPolicy, L2ScalingIsMultiplicative)
{
    PolicyFixture fx(Metric::kL2);
    const double thr = 2.0;
    EXPECT_DOUBLE_EQ(fx.policy.scaled(0, thr, 1.0), 2.0);
    EXPECT_DOUBLE_EQ(fx.policy.scaled(0, thr, 0.5), 1.0);
    EXPECT_DOUBLE_EQ(fx.policy.scaled(0, thr, 0.0), 0.0);
}

TEST(ThresholdPolicy, IpScalingRaisesFloorMonotonically)
{
    PolicyFixture fx(Metric::kInnerProduct);
    const double thr = fx.policy.threshold(0, 0.0f, 0.0f);
    double prev = fx.policy.scaled(0, thr, 1.0);
    EXPECT_DOUBLE_EQ(prev, thr);
    for (double scale : {0.8, 0.5, 0.2}) {
        const double cur = fx.policy.scaled(0, thr, scale);
        EXPECT_GE(cur, prev); // smaller scale -> higher (tighter) floor
        prev = cur;
    }
    EXPECT_LE(prev, fx.policy.maxThreshold(0) + 1e-9);
}

TEST(ThresholdPolicy, L2ThresholdCoversTopKMostly)
{
    // Property: the predicted radius around a *data* point should
    // contain a healthy share of its top-50 subspace neighbours.
    PolicyFixture fx(Metric::kL2, 3000);
    Rng rng(9);
    int covered = 0, total = 0;
    for (int trial = 0; trial < 30; ++trial) {
        const idx_t p = static_cast<idx_t>(rng.below(3000));
        const float x = fx.vectors.at(p, 0), y = fx.vectors.at(p, 1);
        const double thr = fx.policy.threshold(0, x, y);
        // Count points within thr of (x, y) in subspace 0.
        int within = 0;
        for (idx_t i = 0; i < 3000; ++i) {
            const float dx = fx.vectors.at(i, 0) - x;
            const float dy = fx.vectors.at(i, 1) - y;
            if (static_cast<double>(dx) * dx + static_cast<double>(dy) * dy
                <= thr * thr)
                ++within;
        }
        covered += within >= 25; // at least half the target top-50
        ++total;
    }
    EXPECT_GE(static_cast<double>(covered) / total, 0.7);
}

TEST(ThresholdPolicy, RejectsMisuse)
{
    PolicyFixture fx(Metric::kL2);
    EXPECT_THROW(fx.policy.threshold(5, 0.0f, 0.0f), ConfigError);
    ThresholdPolicy untrained;
    EXPECT_THROW(untrained.threshold(0, 0.0f, 0.0f), ConfigError);

    FloatMatrix bad(10, 5);
    DensityMap dm;
    ThresholdPolicy policy;
    ThresholdPolicy::Params params;
    EXPECT_THROW(policy.train(Metric::kL2, bad.view(), 2, dm, params),
                 ConfigError);
}

} // namespace
} // namespace juno
