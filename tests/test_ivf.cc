/** @file Tests for the inverted file index (filtering stage A). */
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/distance.h"
#include "common/logging.h"
#include "dataset/synthetic.h"
#include "ivf/ivf.h"

namespace juno {
namespace {

Dataset
smallDataset(idx_t n = 400, idx_t dim = 8)
{
    SyntheticSpec spec;
    spec.kind = DatasetKind::kUniform;
    spec.num_points = n;
    spec.num_queries = 10;
    spec.dim = dim;
    spec.seed = 21;
    return makeDataset(spec);
}

TEST(Ivf, ListsPartitionAllPoints)
{
    const auto ds = smallDataset();
    InvertedFileIndex ivf;
    InvertedFileIndex::Params params;
    params.clusters = 16;
    ivf.build(ds.base.view(), params);

    idx_t total = 0;
    std::set<idx_t> seen;
    for (cluster_t c = 0; c < ivf.numClusters(); ++c) {
        for (idx_t p : ivf.list(c)) {
            EXPECT_TRUE(seen.insert(p).second) << "duplicate point " << p;
            EXPECT_EQ(ivf.label(p), c);
        }
        total += static_cast<idx_t>(ivf.list(c).size());
    }
    EXPECT_EQ(total, ds.base.rows());
}

TEST(Ivf, ProbeReturnsNearestCentroidsL2)
{
    const auto ds = smallDataset();
    InvertedFileIndex ivf;
    InvertedFileIndex::Params params;
    params.clusters = 16;
    ivf.build(ds.base.view(), params);

    const float *q = ds.queries.row(0);
    const auto probes = ivf.probe(Metric::kL2, q, 4);
    ASSERT_EQ(probes.size(), 4u);
    // Best-first order and genuinely the closest 4.
    for (std::size_t i = 1; i < probes.size(); ++i)
        EXPECT_LE(probes[i - 1].score, probes[i].score);
    std::vector<float> dists;
    for (cluster_t c = 0; c < 16; ++c)
        dists.push_back(l2Sqr(q, ivf.centroid(c), ds.base.cols()));
    std::sort(dists.begin(), dists.end());
    EXPECT_FLOAT_EQ(probes[0].score, dists[0]);
    EXPECT_FLOAT_EQ(probes[3].score, dists[3]);
}

TEST(Ivf, ProbeIpOrdersDescending)
{
    const auto ds = smallDataset();
    InvertedFileIndex ivf;
    InvertedFileIndex::Params params;
    params.clusters = 8;
    ivf.build(ds.base.view(), params);
    const auto probes =
        ivf.probe(Metric::kInnerProduct, ds.queries.row(1), 5);
    for (std::size_t i = 1; i < probes.size(); ++i)
        EXPECT_GE(probes[i - 1].score, probes[i].score);
}

TEST(Ivf, ProbeClampsNprobsToClusterCount)
{
    const auto ds = smallDataset(100);
    InvertedFileIndex ivf;
    InvertedFileIndex::Params params;
    params.clusters = 4;
    ivf.build(ds.base.view(), params);
    const auto probes = ivf.probe(Metric::kL2, ds.queries.row(0), 100);
    EXPECT_EQ(probes.size(), 4u);
}

TEST(Ivf, ResidualIsPointMinusCentroid)
{
    const auto ds = smallDataset(100, 4);
    InvertedFileIndex ivf;
    InvertedFileIndex::Params params;
    params.clusters = 4;
    ivf.build(ds.base.view(), params);
    std::vector<float> res(4);
    ivf.residual(ds.base.row(7), 2, res.data());
    for (idx_t j = 0; j < 4; ++j)
        EXPECT_FLOAT_EQ(res[static_cast<std::size_t>(j)],
                        ds.base.at(7, j) - ivf.centroid(2)[j]);
}

TEST(Ivf, ResidualOfOwnCentroidAssignmentIsSmall)
{
    const auto ds = smallDataset();
    InvertedFileIndex ivf;
    InvertedFileIndex::Params params;
    params.clusters = 32;
    ivf.build(ds.base.view(), params);
    // Residual against own centroid must be no longer than against a
    // random other centroid (definition of nearest assignment).
    std::vector<float> res(ds.base.cols());
    for (idx_t p = 0; p < 50; ++p) {
        ivf.residual(ds.base.row(p), ivf.label(p), res.data());
        const float own = l2NormSqr(res.data(), ds.base.cols());
        const cluster_t other = (ivf.label(p) + 1) % 32;
        ivf.residual(ds.base.row(p), other, res.data());
        EXPECT_LE(own, l2NormSqr(res.data(), ds.base.cols()) + 1e-5f);
    }
}

TEST(Ivf, RejectsProbeBeforeBuildAndBadNprobs)
{
    InvertedFileIndex ivf;
    const float q[4] = {0, 0, 0, 0};
    EXPECT_THROW(ivf.probe(Metric::kL2, q, 1), ConfigError);
    const auto ds = smallDataset(50, 4);
    InvertedFileIndex::Params params;
    params.clusters = 4;
    ivf.build(ds.base.view(), params);
    EXPECT_THROW(ivf.probe(Metric::kL2, q, 0), ConfigError);
}

} // namespace
} // namespace juno
