/** @file Tests for the per-subspace density map. */
#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "core/density_map.h"

namespace juno {
namespace {

TEST(SubspaceDensity, CountsPerCell)
{
    // Four points in distinct corners of [0,1]^2 with a 2x2 grid.
    FloatMatrix pts(4, 2);
    const float coords[4][2] = {{0.1f, 0.1f}, {0.9f, 0.1f},
                                {0.1f, 0.9f}, {0.9f, 0.9f}};
    for (idx_t i = 0; i < 4; ++i) {
        pts.at(i, 0) = coords[i][0];
        pts.at(i, 1) = coords[i][1];
    }
    SubspaceDensity map;
    map.build(pts.view(), 2);
    for (idx_t i = 0; i < 4; ++i)
        EXPECT_EQ(map.countAt(coords[i][0], coords[i][1]), 1);
}

TEST(SubspaceDensity, DensityIsCountOverArea)
{
    FloatMatrix pts(10, 2);
    for (idx_t i = 0; i < 10; ++i) {
        pts.at(i, 0) = 0.5f;
        pts.at(i, 1) = 0.5f;
    }
    // Spread two outliers so the box is non-degenerate.
    pts.at(8, 0) = 0.0f;
    pts.at(8, 1) = 0.0f;
    pts.at(9, 0) = 1.0f;
    pts.at(9, 1) = 1.0f;
    SubspaceDensity map;
    map.build(pts.view(), 4);
    EXPECT_DOUBLE_EQ(map.densityAt(0.5f, 0.5f),
                     static_cast<double>(map.countAt(0.5f, 0.5f)) /
                         map.cellArea());
    EXPECT_EQ(map.countAt(0.5f, 0.5f), 8);
}

TEST(SubspaceDensity, DenseRegionHasHigherDensity)
{
    Rng rng(3);
    FloatMatrix pts(1000, 2);
    for (idx_t i = 0; i < 1000; ++i) {
        if (i < 900) {
            // Dense blob near the origin.
            pts.at(i, 0) = static_cast<float>(rng.gaussian(0.0, 0.05));
            pts.at(i, 1) = static_cast<float>(rng.gaussian(0.0, 0.05));
        } else {
            pts.at(i, 0) = rng.uniform(-2.0f, 2.0f);
            pts.at(i, 1) = rng.uniform(-2.0f, 2.0f);
        }
    }
    SubspaceDensity map;
    map.build(pts.view(), 50);
    EXPECT_GT(map.densityAt(0.0f, 0.0f), map.densityAt(1.8f, 1.8f));
}

TEST(SubspaceDensity, QueriesOutsideBoxClampToEdgeCells)
{
    FloatMatrix pts(3, 2);
    pts.at(0, 0) = 0;
    pts.at(1, 0) = 1;
    pts.at(2, 0) = 2;
    SubspaceDensity map;
    map.build(pts.view(), 4);
    // Far outside queries land in boundary cells, not UB.
    EXPECT_GE(map.densityAt(-100.0f, -100.0f), 0.0);
    EXPECT_GE(map.densityAt(100.0f, 100.0f), 0.0);
}

TEST(SubspaceDensity, RejectsBadInput)
{
    FloatMatrix pts(2, 3);
    SubspaceDensity map;
    EXPECT_THROW(map.build(pts.view(), 4), ConfigError);
    FloatMatrix ok(2, 2);
    EXPECT_THROW(map.build(ok.view(), 0), ConfigError);
}

TEST(DensityMap, BuildsPerSubspace)
{
    Rng rng(5);
    FloatMatrix residuals(200, 8); // 4 subspaces
    for (idx_t i = 0; i < 200; ++i)
        for (idx_t j = 0; j < 8; ++j)
            residuals.at(i, j) = rng.uniform(-1.0f, 1.0f);
    DensityMap map;
    map.build(residuals.view(), 4, 20);
    EXPECT_TRUE(map.built());
    EXPECT_EQ(map.numSubspaces(), 4);
    for (int s = 0; s < 4; ++s)
        EXPECT_GE(map.densityAt(s, 0.0f, 0.0f), 0.0);
}

TEST(DensityMap, TotalCountsMatchPoints)
{
    Rng rng(7);
    FloatMatrix residuals(150, 4);
    for (idx_t i = 0; i < 150; ++i)
        for (idx_t j = 0; j < 4; ++j)
            residuals.at(i, j) = rng.uniform(-1.0f, 1.0f);
    DensityMap map;
    map.build(residuals.view(), 2, 10);
    // Sum of counts over all visited cells should equal N per subspace;
    // verify via sampled reconstruction: every point's own cell has
    // count >= 1.
    for (int s = 0; s < 2; ++s)
        for (idx_t i = 0; i < 150; ++i)
            EXPECT_GE(map.subspace(s).countAt(residuals.at(i, 2 * s),
                                              residuals.at(i, 2 * s + 1)),
                      1);
}

TEST(DensityMap, RejectsDimMismatch)
{
    FloatMatrix residuals(10, 6);
    DensityMap map;
    EXPECT_THROW(map.build(residuals.view(), 4, 10), ConfigError);
}

} // namespace
} // namespace juno
