/** @file Unit tests for the deterministic PRNG. */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.h"
#include "common/rng.h"

namespace juno {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a() == b();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const float v = rng.uniform(-2.5f, 7.5f);
        EXPECT_GE(v, -2.5f);
        EXPECT_LT(v, 7.5f);
    }
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(5);
    for (int i = 0; i < 2000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, GaussianMomentsMatch)
{
    Rng rng(13);
    double sum = 0.0, sum2 = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum2 += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, GaussianMeanStddevShift)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, SampleWithoutReplacementUnique)
{
    Rng rng(19);
    const auto sample = rng.sampleWithoutReplacement(100, 30);
    EXPECT_EQ(sample.size(), 30u);
    std::set<idx_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 30u);
    for (idx_t id : sample) {
        EXPECT_GE(id, 0);
        EXPECT_LT(id, 100);
    }
}

TEST(Rng, SampleWithoutReplacementFullSet)
{
    Rng rng(23);
    const auto sample = rng.sampleWithoutReplacement(10, 10);
    std::set<idx_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleRejectsOversizedRequest)
{
    Rng rng(29);
    EXPECT_THROW(rng.sampleWithoutReplacement(5, 6), ConfigError);
}

TEST(Rng, ShufflePreservesMultiset)
{
    Rng rng(31);
    std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
    auto copy = items;
    rng.shuffle(copy);
    std::sort(copy.begin(), copy.end());
    EXPECT_EQ(copy, items);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(37);
    Rng b = a.fork();
    // The fork should not replay the parent's sequence.
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a() == b();
    EXPECT_LT(same, 2);
}

} // namespace
} // namespace juno
