/** @file Round-trip and failure tests for the fvecs/ivecs readers. */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/logging.h"
#include "dataset/io.h"

namespace juno {
namespace {

std::string
tempPath(const std::string &name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Io, FvecsRoundTrip)
{
    FloatMatrix m(3, 4);
    for (idx_t r = 0; r < 3; ++r)
        for (idx_t c = 0; c < 4; ++c)
            m.at(r, c) = static_cast<float>(r * 10 + c);
    const auto path = tempPath("roundtrip.fvecs");
    writeFvecs(path, m.view());
    const auto back = readFvecs(path);
    ASSERT_EQ(back.rows(), 3);
    ASSERT_EQ(back.cols(), 4);
    for (idx_t r = 0; r < 3; ++r)
        for (idx_t c = 0; c < 4; ++c)
            EXPECT_FLOAT_EQ(back.at(r, c), m.at(r, c));
    std::remove(path.c_str());
}

TEST(Io, IvecsRoundTrip)
{
    std::vector<std::vector<std::int32_t>> rows{{1, 2, 3}, {4, 5, 6}};
    const auto path = tempPath("roundtrip.ivecs");
    writeIvecs(path, rows);
    const auto back = readIvecs(path);
    EXPECT_EQ(back, rows);
    std::remove(path.c_str());
}

TEST(Io, BvecsWidensToFloat)
{
    // Hand-craft a bvecs file: dim=3, bytes {1, 128, 255}.
    const auto path = tempPath("mini.bvecs");
    {
        std::ofstream out(path, std::ios::binary);
        const std::int32_t d = 3;
        out.write(reinterpret_cast<const char *>(&d), 4);
        const unsigned char bytes[3] = {1, 128, 255};
        out.write(reinterpret_cast<const char *>(bytes), 3);
    }
    const auto m = readBvecs(path);
    ASSERT_EQ(m.rows(), 1);
    ASSERT_EQ(m.cols(), 3);
    EXPECT_FLOAT_EQ(m.at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(m.at(0, 1), 128.0f);
    EXPECT_FLOAT_EQ(m.at(0, 2), 255.0f);
    std::remove(path.c_str());
}

TEST(Io, MissingFileThrows)
{
    EXPECT_THROW(readFvecs("/nonexistent/path.fvecs"), ConfigError);
}

TEST(Io, TruncatedRecordThrows)
{
    const auto path = tempPath("truncated.fvecs");
    {
        std::ofstream out(path, std::ios::binary);
        const std::int32_t d = 8;
        out.write(reinterpret_cast<const char *>(&d), 4);
        const float one = 1.0f; // only 1 of 8 components present
        out.write(reinterpret_cast<const char *>(&one), 4);
    }
    EXPECT_THROW(readFvecs(path), ConfigError);
    std::remove(path.c_str());
}

TEST(Io, ImplausibleDimensionThrows)
{
    const auto path = tempPath("baddim.fvecs");
    {
        std::ofstream out(path, std::ios::binary);
        const std::int32_t d = -4;
        out.write(reinterpret_cast<const char *>(&d), 4);
    }
    EXPECT_THROW(readFvecs(path), ConfigError);
    std::remove(path.c_str());
}

TEST(Io, InconsistentDimensionThrows)
{
    const auto path = tempPath("mixed.fvecs");
    {
        std::ofstream out(path, std::ios::binary);
        std::int32_t d = 2;
        const float vals[2] = {1.0f, 2.0f};
        out.write(reinterpret_cast<const char *>(&d), 4);
        out.write(reinterpret_cast<const char *>(vals), 8);
        d = 3;
        const float vals3[3] = {1.0f, 2.0f, 3.0f};
        out.write(reinterpret_cast<const char *>(&d), 4);
        out.write(reinterpret_cast<const char *>(vals3), 12);
    }
    EXPECT_THROW(readFvecs(path), ConfigError);
    std::remove(path.c_str());
}

TEST(Io, EmptyFileGivesEmptyMatrix)
{
    const auto path = tempPath("empty.fvecs");
    { std::ofstream out(path, std::ios::binary); }
    const auto m = readFvecs(path);
    EXPECT_EQ(m.rows(), 0);
    std::remove(path.c_str());
}

} // namespace
} // namespace juno
