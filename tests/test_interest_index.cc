/** @file Tests for the entry -> points inverted index. */
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/interest_index.h"
#include "dataset/synthetic.h"

namespace juno {
namespace {

struct Fixture {
    Dataset ds;
    InvertedFileIndex ivf;
    ProductQuantizer pq;
    PQCodes codes;
    InterestIndex interest;

    Fixture()
    {
        SyntheticSpec spec;
        spec.kind = DatasetKind::kDeepLike;
        spec.num_points = 600;
        spec.num_queries = 0;
        spec.dim = 8;
        spec.seed = 61;
        ds = makeDataset(spec);

        InvertedFileIndex::Params ivf_params;
        ivf_params.clusters = 8;
        ivf.build(ds.base.view(), ivf_params);

        FloatMatrix residuals(ds.base.rows(), ds.base.cols());
        for (idx_t p = 0; p < ds.base.rows(); ++p)
            ivf.residual(ds.base.row(p), ivf.label(p), residuals.row(p));
        PQParams pq_params;
        pq_params.num_subspaces = 4;
        pq_params.entries = 16;
        pq.train(residuals.view(), pq_params);
        codes = pq.encode(residuals.view());

        interest.build(ivf, codes, 16);
    }
};

TEST(InterestIndex, BuildState)
{
    Fixture fx;
    EXPECT_TRUE(fx.interest.built());
    EXPECT_EQ(fx.interest.numSubspaces(), 4);
    EXPECT_EQ(fx.interest.numClusters(), 8);
    EXPECT_GT(fx.interest.maxClusterSize(), 0);
}

TEST(InterestIndex, LookupReturnsExactlyMatchingPoints)
{
    Fixture fx;
    for (cluster_t c = 0; c < 8; ++c) {
        const auto &list = fx.ivf.list(c);
        for (int s = 0; s < 4; ++s) {
            for (entry_t e = 0; e < 16; ++e) {
                const auto range = fx.interest.lookup(c, s, e);
                // Everything in the range must actually match.
                std::set<std::uint32_t> in_range;
                for (const std::uint32_t *it = range.begin;
                     it != range.end; ++it) {
                    EXPECT_EQ(fx.codes.at(list[*it], s), e);
                    in_range.insert(*it);
                }
                // Everything matching must be in the range.
                for (std::uint32_t ord = 0; ord < list.size(); ++ord) {
                    if (fx.codes.at(list[ord], s) == e) {
                        EXPECT_TRUE(in_range.count(ord));
                    }
                }
            }
        }
    }
}

TEST(InterestIndex, RangesPartitionTheCluster)
{
    Fixture fx;
    for (cluster_t c = 0; c < 8; ++c) {
        for (int s = 0; s < 4; ++s) {
            std::size_t total = 0;
            for (entry_t e = 0; e < 16; ++e)
                total += fx.interest.lookup(c, s, e).size();
            EXPECT_EQ(total, fx.ivf.list(c).size());
        }
    }
}

TEST(InterestIndex, UnusedEntryGivesEmptyRange)
{
    Fixture fx;
    // Entry beyond the trained range can never appear.
    const auto range = fx.interest.lookup(0, 0, 9999);
    EXPECT_TRUE(range.empty());
    EXPECT_EQ(range.size(), 0u);
}

TEST(InterestIndex, MaxClusterSizeIsTight)
{
    Fixture fx;
    idx_t max_size = 0;
    for (cluster_t c = 0; c < 8; ++c)
        max_size = std::max(max_size,
                            static_cast<idx_t>(fx.ivf.list(c).size()));
    EXPECT_EQ(fx.interest.maxClusterSize(), max_size);
}

} // namespace
} // namespace juno
