/** @file Tests for the HNSW graph index. */
#include <gtest/gtest.h>

#include "baseline/hnsw.h"
#include "common/logging.h"
#include "dataset/ground_truth.h"
#include "dataset/recall.h"
#include "dataset/synthetic.h"

namespace juno {
namespace {

Dataset
smallData(idx_t n = 800)
{
    SyntheticSpec spec;
    spec.kind = DatasetKind::kDeepLike;
    spec.num_points = n;
    spec.num_queries = 20;
    spec.dim = 12;
    spec.components = 10;
    spec.seed = 55;
    return makeDataset(spec);
}

TEST(Hnsw, HighRecallWithWideBeam)
{
    const auto ds = smallData();
    Hnsw hnsw;
    Hnsw::Params params;
    params.m = 12;
    params.ef_construction = 80;
    hnsw.build(Metric::kL2, ds.base.view(), params);

    const auto gt = computeGroundTruth(Metric::kL2, ds.base.view(),
                                       ds.queries.view(), 10);
    ResultSet results;
    for (idx_t q = 0; q < ds.queries.rows(); ++q)
        results.push_back(hnsw.search(ds.queries.row(q), 10, 128));
    EXPECT_GE(recall1AtK(gt, results), 0.9);
}

TEST(Hnsw, SelfQueryReturnsSelf)
{
    const auto ds = smallData(300);
    Hnsw hnsw;
    hnsw.build(Metric::kL2, ds.base.view(), {});
    for (idx_t p = 0; p < 20; ++p) {
        const auto found = hnsw.search(ds.base.row(p), 1, 64);
        ASSERT_FALSE(found.empty());
        EXPECT_EQ(found[0].id, p);
    }
}

TEST(Hnsw, ResultsAreBestFirst)
{
    const auto ds = smallData(300);
    Hnsw hnsw;
    hnsw.build(Metric::kL2, ds.base.view(), {});
    const auto found = hnsw.search(ds.queries.row(0), 10, 64);
    for (std::size_t i = 1; i < found.size(); ++i)
        EXPECT_LE(found[i - 1].score, found[i].score);
}

TEST(Hnsw, InnerProductSearchWorks)
{
    SyntheticSpec spec;
    spec.kind = DatasetKind::kTtiLike;
    spec.num_points = 500;
    spec.num_queries = 10;
    spec.dim = 12;
    spec.seed = 56;
    const auto ds = makeDataset(spec);

    Hnsw hnsw;
    hnsw.build(Metric::kInnerProduct, ds.base.view(), {});
    const auto gt = computeGroundTruth(Metric::kInnerProduct,
                                       ds.base.view(), ds.queries.view(), 5);
    ResultSet results;
    for (idx_t q = 0; q < ds.queries.rows(); ++q)
        results.push_back(hnsw.search(ds.queries.row(q), 5, 128));
    EXPECT_GE(recall1AtK(gt, results), 0.7);
}

TEST(Hnsw, WiderBeamNeverHurtsMuch)
{
    const auto ds = smallData();
    Hnsw hnsw;
    hnsw.build(Metric::kL2, ds.base.view(), {});
    const auto gt = computeGroundTruth(Metric::kL2, ds.base.view(),
                                       ds.queries.view(), 10);
    ResultSet narrow, wide;
    for (idx_t q = 0; q < ds.queries.rows(); ++q) {
        narrow.push_back(hnsw.search(ds.queries.row(q), 10, 10));
        wide.push_back(hnsw.search(ds.queries.row(q), 10, 200));
    }
    EXPECT_GE(recall1AtK(gt, wide), recall1AtK(gt, narrow) - 0.05);
}

TEST(Hnsw, DegreeBoundsRespected)
{
    const auto ds = smallData(400);
    Hnsw hnsw;
    Hnsw::Params params;
    params.m = 6;
    params.ef_construction = 40;
    hnsw.build(Metric::kL2, ds.base.view(), params);
    // Layer-0 degree bound is 2m; pruning keeps lists within bound + m
    // slack (insertion order effects).
    for (idx_t p = 0; p < 400; ++p)
        EXPECT_LE(hnsw.neighbors(0, p).size(),
                  static_cast<std::size_t>(3 * params.m));
}

TEST(Hnsw, MaxLevelIsLogarithmicish)
{
    const auto ds = smallData(1000);
    Hnsw hnsw;
    hnsw.build(Metric::kL2, ds.base.view(), {});
    EXPECT_GE(hnsw.maxLevel(), 0);
    EXPECT_LE(hnsw.maxLevel(), 12);
}

TEST(Hnsw, RejectsBadParamsAndUse)
{
    Hnsw hnsw;
    const float q[4] = {0, 0, 0, 0};
    EXPECT_THROW(hnsw.search(q, 1, 10), ConfigError);
    const auto ds = smallData(50);
    Hnsw::Params params;
    params.m = 1;
    EXPECT_THROW(hnsw.build(Metric::kL2, ds.base.view(), params),
                 ConfigError);
}

} // namespace
} // namespace juno
