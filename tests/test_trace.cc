/** @file Unit tests for sampled tracing (obs/trace.h). */
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace juno {
namespace {

/**
 * Minimal recursive-descent JSON syntax checker — enough to prove
 * renderJson() emits a well-formed document (balanced containers, no
 * trailing commas, quoted keys, legal numbers), without needing a
 * JSON library in the test image.
 */
class JsonChecker {
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    bool valid()
    {
        pos_ = 0;
        if (!value())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool string()
    {
        skipWs();
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
            }
            ++pos_;
        }
        return consumeRaw('"');
    }

    bool consumeRaw(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool number()
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    bool value()
    {
        skipWs();
        if (pos_ >= text_.size())
            return false;
        const char c = text_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number();
    }

    bool object()
    {
        if (!consume('{'))
            return false;
        if (consume('}'))
            return true;
        do {
            if (!string() || !consume(':') || !value())
                return false;
        } while (consume(','));
        return consume('}');
    }

    bool array()
    {
        if (!consume('['))
            return false;
        if (consume(']'))
            return true;
        do {
            if (!value())
                return false;
        } while (consume(','));
        return consume(']');
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

TEST(TraceSpan, NullTraceIsANoOp)
{
    // The untraced hot path: construction, arg() and destruction must
    // all reduce to pointer tests.
    TraceSpan span(nullptr, "stage");
    span.arg("k", 1.0);
}

TEST(TraceSpan, RecordsCompleteEventWithArgs)
{
    Trace trace(1, Trace::Clock::now());
    {
        TraceSpan span(&trace, "scan");
        span.arg("probes", 32.0);
        span.arg("rows", 4.0);
    }
    const auto events = trace.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "scan");
    EXPECT_EQ(events[0].phase, 'X');
    EXPECT_GE(events[0].dur_us, 0);
    EXPECT_STREQ(events[0].arg_name[0], "probes");
    EXPECT_DOUBLE_EQ(events[0].arg_value[0], 32.0);
    EXPECT_STREQ(events[0].arg_name[1], "rows");
}

TEST(TraceSpan, NestedSpansBothRecorded)
{
    Trace trace(1, Trace::Clock::now());
    {
        TraceSpan outer(&trace, "engine");
        {
            TraceSpan inner(&trace, "chunk");
        }
    }
    const auto events = trace.events();
    ASSERT_EQ(events.size(), 2u);
    // Inner scope closes first; the outer span must fully contain it.
    EXPECT_STREQ(events[0].name, "chunk");
    EXPECT_STREQ(events[1].name, "engine");
    EXPECT_LE(events[1].ts_us, events[0].ts_us);
    EXPECT_GE(events[1].ts_us + events[1].dur_us,
              events[0].ts_us + events[0].dur_us);
}

TEST(Trace, InstantMarkers)
{
    Trace trace(1, Trace::Clock::now());
    trace.instant("hot_cache", "hits", 3.0, "misses", 1.0);
    const auto events = trace.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].phase, 'i');
    EXPECT_EQ(events[0].dur_us, 0);
}

TEST(Tracer, RateZeroNeverSamplesAndEmitsNothing)
{
    Tracer tracer; // default config: sample_rate 0
    EXPECT_FALSE(tracer.samplingEnabled());
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(tracer.shouldSample());
    EXPECT_EQ(tracer.sampledCount(), 0u);
    const std::string json = tracer.renderJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    // An empty tracer renders an empty traceEvents array.
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_TRUE(tracer.sampledTraces().empty());
    EXPECT_TRUE(tracer.slowTraces().empty());
}

TEST(Tracer, RateOneSamplesEverything)
{
    TracerConfig config;
    config.sample_rate = 1.0;
    Tracer tracer(config);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(tracer.shouldSample());
}

TEST(Tracer, FractionalRateSamplesOneInN)
{
    TracerConfig config;
    config.sample_rate = 0.25;
    Tracer tracer(config);
    int sampled = 0;
    for (int i = 0; i < 1000; ++i)
        sampled += tracer.shouldSample() ? 1 : 0;
    EXPECT_EQ(sampled, 250);
}

TEST(Tracer, SampledRetentionIsBounded)
{
    TracerConfig config;
    config.sample_rate = 1.0;
    config.max_sampled = 2;
    Tracer tracer(config);
    for (int i = 0; i < 5; ++i)
        tracer.collect(tracer.makeTrace("t" + std::to_string(i)));
    EXPECT_EQ(tracer.sampledTraces().size(), 2u);
    EXPECT_EQ(tracer.sampledCount(), 2u);
    EXPECT_EQ(tracer.droppedCount(), 3u);
}

TEST(Tracer, SlowRingKeepsMostRecent)
{
    TracerConfig config;
    config.slow_us = 100.0;
    config.slow_ring = 2;
    Tracer tracer(config);
    EXPECT_DOUBLE_EQ(tracer.slowThresholdUs(), 100.0);
    for (int i = 0; i < 4; ++i)
        tracer.collectSlow(tracer.makeTrace("slow " + std::to_string(i)));
    const auto ring = tracer.slowTraces();
    ASSERT_EQ(ring.size(), 2u);
    EXPECT_EQ(ring[0]->label(), "slow 2");
    EXPECT_EQ(ring[1]->label(), "slow 3");
    EXPECT_EQ(tracer.slowCount(), 4u);
}

TEST(Tracer, RenderJsonIsValidTraceEventFormat)
{
    TracerConfig config;
    config.sample_rate = 1.0;
    Tracer tracer(config);
    auto trace = tracer.makeTrace("query \"7\"\n"); // needs escaping
    {
        TraceSpan span(trace.get(), "search");
        span.arg("k", 10.0);
        TraceSpan inner(trace.get(), "scan");
    }
    trace->instant("hot_cache", "hits", 1.0);
    tracer.collect(trace);
    const std::string json = tracer.renderJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // One complete span, its nested child, the instant and the
    // process_name metadata record all serialise.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("\"search\""), std::string::npos);
}

TEST(Tracer, ConcurrentAppendsAreClean)
{
    // Worker threads of one engine run append to the same trace; the
    // TSan leg exercises this for races.
    TracerConfig config;
    config.sample_rate = 1.0;
    Tracer tracer(config);
    auto trace = tracer.makeTrace("mt");
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&] {
            for (int i = 0; i < 500; ++i) {
                TraceSpan span(trace.get(), "chunk");
                span.arg("i", static_cast<double>(i));
            }
        });
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(trace->events().size(), 2000u);
    tracer.collect(std::move(trace));
    EXPECT_TRUE(JsonChecker(tracer.renderJson()).valid());
}

TEST(Trace, ThreadIdsAreDensePerThread)
{
    const std::uint32_t here = traceThreadId();
    EXPECT_EQ(here, traceThreadId()); // stable within a thread
    std::uint32_t other = here;
    std::thread([&] { other = traceThreadId(); }).join();
    EXPECT_NE(here, other);
}

} // namespace
} // namespace juno
