/** @file Tests for IndexSpec parsing, printing and validation. */
#include <gtest/gtest.h>

#include "registry/index_spec.h"

#include "common/logging.h"

namespace juno {
namespace {

TEST(IndexSpec, ParsesTypeOnly)
{
    const auto spec = IndexSpec::parse("flat");
    EXPECT_EQ(spec.type, "flat");
    EXPECT_TRUE(spec.params.empty());
    EXPECT_EQ(spec.toString(), "flat");
}

TEST(IndexSpec, ParsesKeyValues)
{
    const auto spec = IndexSpec::parse("ivfpq:nlist=1024,m=16,bits=4");
    EXPECT_EQ(spec.type, "ivfpq");
    ASSERT_EQ(spec.params.size(), 3u);
    EXPECT_EQ(spec.getInt("nlist", 0), 1024);
    EXPECT_EQ(spec.getInt("m", 0), 16);
    EXPECT_EQ(spec.get("bits"), "4");
    EXPECT_FALSE(spec.has("entries"));
    EXPECT_EQ(spec.getInt("entries", 7), 7);
}

TEST(IndexSpec, RoundTripsThroughText)
{
    for (const char *text :
         {"flat", "ivfflat:nlist=256,nprobe=8",
          "ivfpq:nlist=1024,m=16,entries=16,nprobe=8,hnsw=1",
          "hnsw:m=16,efc=100,ef=64",
          "juno:nlist=256,entries=128,nprobe=32,mode=h,scale=1.5",
          "rtexact"}) {
        const auto spec = IndexSpec::parse(text);
        EXPECT_EQ(spec.toString(), text);
        EXPECT_EQ(IndexSpec::parse(spec.toString()), spec) << text;
    }
}

TEST(IndexSpec, SettersRoundTrip)
{
    IndexSpec spec;
    spec.type = "juno";
    spec.setInt("nlist", 256);
    spec.setDouble("scale", 0.1); // not exactly representable
    spec.setBool("rt", true);
    const auto back = IndexSpec::parse(spec.toString());
    EXPECT_EQ(back, spec);
    EXPECT_DOUBLE_EQ(back.getDouble("scale", 0.0), 0.1);
    EXPECT_TRUE(back.getBool("rt", false));
    // set() on an existing key replaces instead of duplicating.
    spec.setInt("nlist", 512);
    EXPECT_EQ(spec.getInt("nlist", 0), 512);
    EXPECT_EQ(IndexSpec::parse(spec.toString()), spec);
}

TEST(IndexSpec, RejectsMalformedText)
{
    for (const char *text :
         {"", ":", "juno:", "juno:nlist", "juno:nlist=", "juno:=4",
          "JUNO:nlist=4", "juno:nlist=4,nlist=8", "juno:,",
          "ju no:nlist=4"}) {
        EXPECT_THROW(IndexSpec::parse(text), ConfigError) << text;
    }
}

TEST(IndexSpec, TypedGettersValidate)
{
    const auto spec = IndexSpec::parse("t:a=x,b=1.5,c=2");
    EXPECT_THROW(spec.getInt("a", 0), ConfigError);
    EXPECT_THROW(spec.getInt("b", 0), ConfigError);
    EXPECT_THROW(spec.getBool("c", false), ConfigError);
    EXPECT_DOUBLE_EQ(spec.getDouble("b", 0.0), 1.5);
}

TEST(IndexSpec, RequireKnownFlagsTypos)
{
    const auto spec = IndexSpec::parse("ivfflat:nlists=64");
    EXPECT_THROW(spec.requireKnown({"nlist", "nprobe"}), ConfigError);
    const auto good = IndexSpec::parse("ivfflat:nlist=64");
    EXPECT_NO_THROW(good.requireKnown({"nlist", "nprobe"}));
}

} // namespace
} // namespace juno
