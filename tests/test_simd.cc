/**
 * @file
 * Tests of the SIMD kernel layer: every dispatched kernel must match
 * the scalar reference (bitwise for the ADC gather and candidate
 * compaction, 1e-4 relative for float reductions) across odd
 * dimensions, and flipping the dispatch level must not change the
 * top-k ids an index returns.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "baseline/flat_index.h"
#include "baseline/ivfpq_index.h"
#include "common/rng.h"
#include "common/simd.h"
#include "dataset/synthetic.h"

namespace juno {
namespace {

const idx_t kDims[] = {1, 3, 7, 33, 100};

/** Restores the active dispatch level when a test scope ends. */
struct LevelGuard {
    simd::Level saved = simd::level();
    ~LevelGuard() { simd::setLevel(saved); }
};

std::vector<float>
randomVec(Rng &rng, std::size_t n)
{
    std::vector<float> v(n);
    for (auto &x : v)
        x = rng.uniform(-1.0f, 1.0f);
    return v;
}

void
expectClose(float expected, float actual, const char *what, idx_t d)
{
    const float tol =
        1e-4f * std::max(1.0f, std::abs(expected));
    EXPECT_NEAR(expected, actual, tol) << what << " d=" << d;
}

TEST(Simd, ReductionsMatchScalarAcrossOddDims)
{
    const auto &scalar = simd::table(simd::Level::kScalar);
    const auto &dispatched = simd::table(simd::bestSupported());
    Rng rng(11);
    for (idx_t d : kDims) {
        const auto a = randomVec(rng, static_cast<std::size_t>(d));
        const auto b = randomVec(rng, static_cast<std::size_t>(d));
        expectClose(scalar.l2_sqr(a.data(), b.data(), d),
                    dispatched.l2_sqr(a.data(), b.data(), d), "l2Sqr", d);
        expectClose(scalar.inner_product(a.data(), b.data(), d),
                    dispatched.inner_product(a.data(), b.data(), d),
                    "innerProduct", d);
        expectClose(scalar.l2_norm_sqr(a.data(), d),
                    dispatched.l2_norm_sqr(a.data(), d), "l2NormSqr", d);
    }
}

TEST(Simd, BatchKernelsMatchScalarReference)
{
    const auto &scalar = simd::table(simd::Level::kScalar);
    const auto &dispatched = simd::table(simd::bestSupported());
    Rng rng(12);
    // n = 7 exercises both the 4-row blocks and the row tail; d = 2
    // additionally exercises the packed JUNO-subspace special case.
    const idx_t n = 7;
    for (idx_t d : {idx_t(1), idx_t(2), idx_t(3), idx_t(33), idx_t(100)}) {
        const auto q = randomVec(rng, static_cast<std::size_t>(d));
        const auto rows =
            randomVec(rng, static_cast<std::size_t>(n * d));
        std::vector<float> ref(static_cast<std::size_t>(n));
        std::vector<float> got(static_cast<std::size_t>(n));

        scalar.l2_sqr_batch(q.data(), rows.data(), n, d, ref.data());
        dispatched.l2_sqr_batch(q.data(), rows.data(), n, d, got.data());
        for (idx_t i = 0; i < n; ++i) {
            expectClose(ref[static_cast<std::size_t>(i)],
                        got[static_cast<std::size_t>(i)], "l2SqrBatch", d);
            // The batch kernel must agree with the single-row kernel.
            expectClose(scalar.l2_sqr(q.data(),
                                      rows.data() +
                                          static_cast<std::size_t>(i * d),
                                      d),
                        ref[static_cast<std::size_t>(i)],
                        "l2SqrBatch-vs-single", d);
        }

        scalar.inner_product_batch(q.data(), rows.data(), n, d,
                                   ref.data());
        dispatched.inner_product_batch(q.data(), rows.data(), n, d,
                                       got.data());
        for (idx_t i = 0; i < n; ++i)
            expectClose(ref[static_cast<std::size_t>(i)],
                        got[static_cast<std::size_t>(i)],
                        "innerProductBatch", d);
    }
}

TEST(Simd, GemmTileMatchesScalar)
{
    const auto &scalar = simd::table(simd::Level::kScalar);
    const auto &dispatched = simd::table(simd::bestSupported());
    Rng rng(13);
    // Shapes hit the 4x16 tile, the 8-wide column tail, the scalar
    // column tail and the row tail.
    const struct {
        idx_t m, k, n;
    } shapes[] = {{5, 7, 19}, {8, 3, 40}, {4, 16, 16}, {1, 1, 1}};
    for (const auto &s : shapes) {
        const auto a =
            randomVec(rng, static_cast<std::size_t>(s.m * s.k));
        const auto b =
            randomVec(rng, static_cast<std::size_t>(s.k * s.n));
        std::vector<float> ref(static_cast<std::size_t>(s.m * s.n));
        std::vector<float> got(static_cast<std::size_t>(s.m * s.n));
        scalar.gemm(a.data(), b.data(), ref.data(), s.m, s.k, s.n);
        dispatched.gemm(a.data(), b.data(), got.data(), s.m, s.k, s.n);
        for (std::size_t i = 0; i < ref.size(); ++i) {
            const float tol =
                1e-4f * std::max(1.0f, std::abs(ref[i]));
            EXPECT_NEAR(ref[i], got[i], tol)
                << "gemm " << s.m << "x" << s.k << "x" << s.n << " @" << i;
        }
    }
}

TEST(Simd, AdcScanBitwiseIdenticalAcrossTables)
{
    const auto &scalar = simd::table(simd::Level::kScalar);
    const auto &dispatched = simd::table(simd::bestSupported());
    Rng rng(14);
    const int subspaces = 5;
    const idx_t entries = 16;
    const idx_t num_points = 45; // not a multiple of the 8-wide gather
    const auto lut = randomVec(
        rng, static_cast<std::size_t>(subspaces) *
                 static_cast<std::size_t>(entries));
    std::vector<entry_t> codes(static_cast<std::size_t>(num_points) *
                               static_cast<std::size_t>(subspaces));
    for (auto &c : codes)
        c = static_cast<entry_t>(rng.uniform() *
                                 static_cast<double>(entries)) %
            static_cast<entry_t>(entries);
    std::vector<idx_t> ids;
    for (idx_t p = num_points; p-- > 0;) // scattered, descending ids
        ids.push_back(p);

    std::vector<float> ref(ids.size());
    std::vector<float> got(ids.size());
    const float base = 0.625f;
    scalar.adc_scan(lut.data(), entries, subspaces, codes.data(),
                    static_cast<std::size_t>(subspaces), ids.data(),
                    ids.size(), base, ref.data());
    dispatched.adc_scan(lut.data(), entries, subspaces, codes.data(),
                        static_cast<std::size_t>(subspaces), ids.data(),
                        ids.size(), base, got.data());
    for (std::size_t i = 0; i < ids.size(); ++i)
        EXPECT_EQ(ref[i], got[i]) << "adc bitwise mismatch at " << i;

    // Cross-check the scalar reference against a naive loop.
    for (std::size_t i = 0; i < ids.size(); ++i) {
        float acc = base;
        for (int s = 0; s < subspaces; ++s)
            acc += lut[static_cast<std::size_t>(s) *
                           static_cast<std::size_t>(entries) +
                       codes[static_cast<std::size_t>(ids[i]) *
                                 static_cast<std::size_t>(subspaces) +
                             static_cast<std::size_t>(s)]];
        EXPECT_EQ(acc, ref[i]);
    }
}

TEST(Simd, CompactCandidatesBitwiseIdenticalAcrossTables)
{
    const auto &scalar = simd::table(simd::Level::kScalar);
    const auto &dispatched = simd::table(simd::bestSupported());
    Rng rng(15);
    const std::size_t n = 37; // exercises the 8-wide blocks + tail
    std::vector<float> acc(n);
    std::vector<std::int32_t> hits(n, 0);
    std::vector<idx_t> list(n);
    for (std::size_t i = 0; i < n; ++i) {
        acc[i] = rng.uniform(-2.0f, 2.0f);
        hits[i] = rng.uniform(0.0f, 1.0f) < 0.25f ? 1 : 0;
        list[i] = static_cast<idx_t>(1000 + i);
    }
    // Force an all-zero block (fast skip) and an all-live block.
    for (std::size_t i = 8; i < 16; ++i)
        hits[i] = 0;
    for (std::size_t i = 16; i < 24; ++i)
        hits[i] = 3;

    std::vector<Neighbor> ref, got;
    const float offset = -1.25f;
    scalar.compact_candidates(acc.data(), hits.data(), list.data(), n,
                              offset, ref);
    dispatched.compact_candidates(acc.data(), hits.data(), list.data(), n,
                                  offset, got);
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_EQ(ref[i], got[i]) << "candidate " << i;
}

TEST(Simd, LevelKnobsRoundTrip)
{
    LevelGuard guard;
    EXPECT_EQ(simd::parseLevel("scalar"), simd::Level::kScalar);
    EXPECT_EQ(simd::parseLevel(""), simd::bestSupported());
    EXPECT_EQ(simd::parseLevel("auto"), simd::bestSupported());
    EXPECT_EQ(simd::parseLevel(nullptr), simd::bestSupported());
    // Unknown specs fall back to best-supported instead of silently
    // changing behaviour.
    EXPECT_EQ(simd::parseLevel("neon"), simd::bestSupported());
    // A supported-tier request resolves to that tier, or degrades to
    // the best level below it on hosts that lack the ISA.
    const simd::Level parsed512 = simd::parseLevel("avx512");
    if (simd::supported(simd::Level::kAvx512))
        EXPECT_EQ(parsed512, simd::Level::kAvx512);
    else
        EXPECT_LE(static_cast<int>(parsed512),
                  static_cast<int>(simd::bestSupported()));

    ASSERT_TRUE(simd::setLevel(simd::Level::kScalar));
    EXPECT_EQ(simd::level(), simd::Level::kScalar);
    EXPECT_STREQ(simd::active().name, "scalar");
    if (simd::supported(simd::Level::kAvx2)) {
        ASSERT_TRUE(simd::setLevel(simd::Level::kAvx2));
        EXPECT_EQ(simd::level(), simd::Level::kAvx2);
        EXPECT_STREQ(simd::active().name, "avx2");
    } else {
        EXPECT_FALSE(simd::setLevel(simd::Level::kAvx2));
        EXPECT_EQ(simd::level(), simd::Level::kScalar);
    }
}

Dataset
simdDataset()
{
    SyntheticSpec spec;
    spec.kind = DatasetKind::kDeepLike;
    spec.num_points = 500;
    spec.num_queries = 15;
    spec.dim = 8;
    spec.seed = 777;
    return makeDataset(spec);
}

std::vector<std::vector<idx_t>>
idsOf(const SearchResults &results)
{
    std::vector<std::vector<idx_t>> ids(results.size());
    for (std::size_t q = 0; q < results.size(); ++q)
        for (const auto &nb : results[q])
            ids[q].push_back(nb.id);
    return ids;
}

TEST(Simd, FlatTopKIdsIdenticalAcrossLevels)
{
    if (!simd::supported(simd::Level::kAvx2))
        GTEST_SKIP() << "host has no AVX2; nothing to compare";
    LevelGuard guard;
    const auto ds = simdDataset();
    FlatIndex index(ds.metric, ds.base.view());

    ASSERT_TRUE(simd::setLevel(simd::Level::kScalar));
    const auto scalar_ids = idsOf(index.search(ds.queries.view(), 10));
    ASSERT_TRUE(simd::setLevel(simd::Level::kAvx2));
    const auto avx2_ids = idsOf(index.search(ds.queries.view(), 10));
    EXPECT_EQ(scalar_ids, avx2_ids);
}

TEST(Simd, IvfPqTopKIdsIdenticalAcrossLevels)
{
    if (!simd::supported(simd::Level::kAvx2))
        GTEST_SKIP() << "host has no AVX2; nothing to compare";
    LevelGuard guard;
    const auto ds = simdDataset();
    IvfPqIndex::Params params;
    params.clusters = 16;
    params.pq_subspaces = 4;
    params.pq_entries = 32;
    params.nprobs = 4;
    // Build once (under the guard's saved level), then search the same
    // trained index under both dispatch levels.
    IvfPqIndex index(ds.metric, ds.base.view(), params);

    ASSERT_TRUE(simd::setLevel(simd::Level::kScalar));
    const auto scalar_ids = idsOf(index.search(ds.queries.view(), 10));
    ASSERT_TRUE(simd::setLevel(simd::Level::kAvx2));
    const auto avx2_ids = idsOf(index.search(ds.queries.view(), 10));
    EXPECT_EQ(scalar_ids, avx2_ids);
    // The widest supported tier (AVX-512 ADC gather when present)
    // must agree as well.
    ASSERT_TRUE(simd::setLevel(simd::bestSupported()));
    const auto best_ids = idsOf(index.search(ds.queries.view(), 10));
    EXPECT_EQ(scalar_ids, best_ids);
}

} // namespace
} // namespace juno
