/**
 * @file
 * Tests of the live-mutability layer: freshness (inserts visible to
 * the next search), immediate deletes via tombstones, the tombstone
 * edge cases (delete-then-reinsert, buffer-only delete, delete racing
 * a merge publish, k > live count), merge parity (bitwise for
 * rebuild-from-union, recall for the IVF incremental path), snapshot
 * generations on disk, service-level mutation plumbing, degraded-flag
 * propagation through the overlay merge, and the merge-vs-search /
 * swap-vs-reader stress suites the TSan CI leg runs.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <set>
#include <thread>
#include <unordered_set>
#include <vector>

#include "baseline/flat_index.h"
#include "common/logging.h"
#include "dataset/synthetic.h"
#include "live/live_index.h"
#include "registry/index_factory.h"
#include "serve/search_service.h"

namespace juno {
namespace {

Dataset
smallDataset(idx_t n = 400, idx_t nq = 16, idx_t dim = 12,
             std::uint64_t seed = 4242)
{
    SyntheticSpec spec;
    spec.kind = DatasetKind::kDeepLike;
    spec.num_points = n;
    spec.num_queries = nq;
    spec.dim = dim;
    spec.seed = seed;
    return makeDataset(spec);
}

bool
hasId(const std::vector<Neighbor> &list, idx_t id)
{
    for (const auto &nb : list)
        if (nb.id == id)
            return true;
    return false;
}

bool
idsUnique(const std::vector<Neighbor> &list)
{
    std::unordered_set<idx_t> seen;
    for (const auto &nb : list)
        if (!seen.insert(nb.id).second)
            return false;
    return true;
}

/** Union dataset a merge is expected to be built over: generation
 * rows in row order minus deletes, then inserts in append order. */
struct UnionSet {
    FloatMatrix points;
    std::vector<idx_t> ids;
};

UnionSet
makeUnion(const FloatMatrix &base, const std::set<idx_t> &deleted,
          const std::vector<std::pair<idx_t, std::vector<float>>> &fresh)
{
    const idx_t d = base.cols();
    std::vector<idx_t> keep;
    for (idx_t r = 0; r < base.rows(); ++r)
        if (deleted.count(r) == 0)
            keep.push_back(r);
    UnionSet u;
    u.points =
        FloatMatrix(static_cast<idx_t>(keep.size() + fresh.size()), d);
    idx_t w = 0;
    for (idx_t r : keep) {
        std::copy_n(base.row(r), static_cast<std::size_t>(d),
                    u.points.row(w++));
        u.ids.push_back(r);
    }
    for (const auto &[id, vec] : fresh) {
        std::copy_n(vec.data(), static_cast<std::size_t>(d),
                    u.points.row(w++));
        u.ids.push_back(id);
    }
    return u;
}

TEST(LiveIndex, InsertVisibleToNextSearch)
{
    const Dataset ds = smallDataset();
    LiveConfig cfg;
    cfg.auto_merge = false;
    LiveIndex live(ds.metric, ds.base.view(), "flat", cfg);

    // A vector identical to query 0 must become that query's top-1
    // the moment insert() returns — no merge, no delay.
    const float *q0 = ds.queries.row(0);
    std::vector<float> vec(q0, q0 + ds.base.cols());
    ASSERT_EQ(live.insert(vec.data(), 9000), MutateStatus::kOk);

    const auto res = live.search(ds.queries.view(), 3);
    EXPECT_EQ(res[0].front().id, 9000);
    EXPECT_EQ(live.size(), ds.base.rows() + 1);
    EXPECT_EQ(live.liveStats().fresh_rows, 1);
}

TEST(LiveIndex, DeleteImmediateAndStatuses)
{
    const Dataset ds = smallDataset();
    LiveConfig cfg;
    cfg.auto_merge = false;
    LiveIndex live(ds.metric, ds.base.view(), "flat", cfg);

    const idx_t victim = live.search(ds.queries.view(), 1)[0][0].id;
    EXPECT_EQ(live.remove(victim), MutateStatus::kOk);
    EXPECT_FALSE(hasId(live.search(ds.queries.view(), 10)[0], victim));
    EXPECT_EQ(live.size(), ds.base.rows() - 1);

    // Typed refusals, one per reason.
    EXPECT_EQ(live.remove(victim), MutateStatus::kUnknownId);
    EXPECT_EQ(live.remove(-1), MutateStatus::kInvalidId);
    std::vector<float> vec(static_cast<std::size_t>(ds.base.cols()),
                           0.5f);
    EXPECT_EQ(live.insert(vec.data(), 0), MutateStatus::kDuplicateId);
    const LiveStats stats = live.liveStats();
    EXPECT_EQ(stats.removes, 1u);
    EXPECT_EQ(stats.rejected_other, 3u);
    EXPECT_EQ(stats.tombstones, 1);
}

TEST(LiveIndex, BufferFullBackpressure)
{
    const Dataset ds = smallDataset(64, 4, 8);
    LiveConfig cfg;
    cfg.auto_merge = false;
    cfg.fresh_capacity = 2;
    LiveIndex live(ds.metric, ds.base.view(), "flat", cfg);
    std::vector<float> vec(8, 0.0f);
    EXPECT_EQ(live.insert(vec.data(), 100), MutateStatus::kOk);
    EXPECT_EQ(live.insert(vec.data(), 101), MutateStatus::kOk);
    EXPECT_EQ(live.insert(vec.data(), 102), MutateStatus::kBufferFull);
    EXPECT_EQ(live.upsert(vec.data(), 100), MutateStatus::kBufferFull);
    EXPECT_EQ(live.liveStats().rejected_full, 2u);
    // A merge drains the buffer and re-opens admission.
    ASSERT_TRUE(live.mergeNow());
    EXPECT_EQ(live.insert(vec.data(), 102), MutateStatus::kOk);
}

TEST(LiveIndex, UpsertReplacesAtomically)
{
    const Dataset ds = smallDataset();
    LiveConfig cfg;
    cfg.auto_merge = false;
    LiveIndex live(ds.metric, ds.base.view(), "flat", cfg);

    const float *q0 = ds.queries.row(0);
    std::vector<float> vec(q0, q0 + ds.base.cols());
    // Upsert of a main-generation id: the old row dies, the new
    // vector serves under the same id, live count is unchanged.
    ASSERT_EQ(live.upsert(vec.data(), 7), MutateStatus::kOk);
    EXPECT_EQ(live.size(), ds.base.rows());
    auto res = live.search(ds.queries.view(), 2);
    EXPECT_EQ(res[0].front().id, 7);
    EXPECT_TRUE(idsUnique(res[0]));
    // Upsert of a brand-new id is a plain insert.
    ASSERT_EQ(live.upsert(vec.data(), 7777), MutateStatus::kOk);
    EXPECT_EQ(live.size(), ds.base.rows() + 1);
    EXPECT_EQ(live.liveStats().upserts, 2u);
}

TEST(LiveIndex, DeleteThenReinsertSameId)
{
    const Dataset ds = smallDataset();
    LiveConfig cfg;
    cfg.auto_merge = false;
    LiveIndex live(ds.metric, ds.base.view(), "flat", cfg);

    const float *q0 = ds.queries.row(0);
    std::vector<float> vec(q0, q0 + ds.base.cols());
    ASSERT_EQ(live.remove(11), MutateStatus::kOk);
    ASSERT_EQ(live.insert(vec.data(), 11), MutateStatus::kOk);

    // The reinserted vector serves under the old id, exactly once.
    auto res = live.search(ds.queries.view(), 5);
    EXPECT_EQ(res[0].front().id, 11);
    EXPECT_TRUE(idsUnique(res[0]));
    EXPECT_EQ(live.size(), ds.base.rows());

    // And the merge keeps exactly the fresh copy.
    ASSERT_TRUE(live.mergeNow());
    res = live.search(ds.queries.view(), 5);
    EXPECT_EQ(res[0].front().id, 11);
    EXPECT_TRUE(idsUnique(res[0]));
    EXPECT_EQ(live.size(), ds.base.rows());
}

TEST(LiveIndex, DeleteOfBufferOnlyId)
{
    const Dataset ds = smallDataset();
    LiveConfig cfg;
    cfg.auto_merge = false;
    LiveIndex live(ds.metric, ds.base.view(), "flat", cfg);

    const float *q0 = ds.queries.row(0);
    std::vector<float> vec(q0, q0 + ds.base.cols());
    ASSERT_EQ(live.insert(vec.data(), 500), MutateStatus::kOk);
    ASSERT_EQ(live.remove(500), MutateStatus::kOk);
    // The id lived only in the fresh buffer: gone immediately, and
    // the merge must not resurrect it.
    EXPECT_FALSE(hasId(live.search(ds.queries.view(), 10)[0], 500));
    EXPECT_EQ(live.size(), ds.base.rows());
    ASSERT_TRUE(live.mergeNow());
    EXPECT_FALSE(hasId(live.search(ds.queries.view(), 10)[0], 500));
    EXPECT_EQ(live.size(), ds.base.rows());
}

TEST(LiveIndex, DeleteRacingMergePublish)
{
    const Dataset ds = smallDataset();
    const float *q0 = ds.queries.row(0);
    std::vector<float> vec(q0, q0 + ds.base.cols());

    LiveIndex *lp = nullptr;
    bool hook_ran = false;
    LiveConfig cfg;
    cfg.auto_merge = false;
    // The hook fires after the merged index is built but before the
    // publish lock is taken — the window a racing delete must
    // survive via loc_ reconciliation.
    cfg.before_publish = [&] {
        if (lp == nullptr)
            return;
        hook_ran = true;
        EXPECT_EQ(lp->remove(3), MutateStatus::kOk);   // main-gen row
        EXPECT_EQ(lp->remove(600), MutateStatus::kOk); // frozen row
        // Both deletes are visible to searches running during the
        // merge (the frozen buffer stays consulted until publish).
        const auto mid = lp->search(ds.queries.view(), 50);
        EXPECT_FALSE(hasId(mid[0], 3));
        EXPECT_FALSE(hasId(mid[0], 600));
    };
    LiveIndex live(ds.metric, ds.base.view(), "flat", cfg);
    lp = &live;
    ASSERT_EQ(live.insert(vec.data(), 600), MutateStatus::kOk);
    ASSERT_TRUE(live.mergeNow());
    ASSERT_TRUE(hook_ran);

    // The published generation contains both rows but must serve
    // neither: the mid-merge deletes were reconciled at publish.
    const auto res = live.search(ds.queries.view(), 50);
    EXPECT_FALSE(hasId(res[0], 3));
    EXPECT_FALSE(hasId(res[0], 600));
    EXPECT_EQ(live.size(), ds.base.rows() - 1);
    // A deleted-during-merge id is reinsertable afterwards.
    EXPECT_EQ(live.insert(vec.data(), 3), MutateStatus::kOk);
    EXPECT_TRUE(hasId(live.search(ds.queries.view(), 5)[0], 3));
}

TEST(LiveIndex, KGreaterThanLiveCountAfterMassDeletion)
{
    const Dataset ds = smallDataset(50, 4, 8);
    LiveConfig cfg;
    cfg.auto_merge = false;
    LiveIndex live(ds.metric, ds.base.view(), "flat", cfg);
    for (idx_t id = 0; id < 45; ++id)
        ASSERT_EQ(live.remove(id), MutateStatus::kOk);
    ASSERT_EQ(live.size(), 5);

    const auto res = live.search(ds.queries.view(), 20);
    for (const auto &list : res) {
        EXPECT_EQ(list.size(), 5u);
        EXPECT_TRUE(idsUnique(list));
        for (const auto &nb : list)
            EXPECT_GE(nb.id, 45);
    }
    // Same once the tombstones compact away.
    ASSERT_TRUE(live.mergeNow());
    const auto after = live.search(ds.queries.view(), 20);
    EXPECT_EQ(after, res);
}

TEST(LiveIndex, NoOverlayParityBitwise)
{
    const Dataset ds = smallDataset();
    LiveConfig cfg;
    cfg.auto_merge = false;
    LiveIndex live(ds.metric, ds.base.view(), "flat", cfg);
    const auto ref = buildIndex(ds.metric, ds.base.view(), "flat");
    // Initial ids are 0..n-1, so the overlay-free fast path must be
    // bitwise the wrapped index's answer.
    EXPECT_EQ(live.search(ds.queries.view(), 10),
              ref->search(ds.queries.view(), 10));
}

/** Rebuild-from-union merges are bitwise a fresh build over the
 * identically-ordered union dataset. */
void
checkMergeParityBitwise(const std::string &spec)
{
    const Dataset ds = smallDataset(300, 12, 16);
    const Dataset extra = smallDataset(8, 1, 16, 999);
    LiveConfig cfg;
    cfg.auto_merge = false;
    cfg.incremental = false; // force rebuild-from-union
    LiveIndex live(ds.metric, ds.base.view(), spec, cfg);

    const std::set<idx_t> deleted = {5, 17, 250};
    std::vector<std::pair<idx_t, std::vector<float>>> fresh;
    for (idx_t i = 0; i < extra.base.rows(); ++i) {
        const float *v = extra.base.row(i);
        fresh.emplace_back(1000 + i,
                           std::vector<float>(v, v + 16));
    }
    for (idx_t id : deleted)
        ASSERT_EQ(live.remove(id), MutateStatus::kOk);
    for (const auto &[id, vec] : fresh)
        ASSERT_EQ(live.insert(vec.data(), id), MutateStatus::kOk);
    ASSERT_TRUE(live.mergeNow());
    EXPECT_EQ(live.generation(), 1u);

    const UnionSet u = makeUnion(ds.base, deleted, fresh);
    ASSERT_EQ(u.points.rows(), live.size());
    const auto ref = buildIndex(ds.metric, u.points.view(), spec);
    auto expected = ref->search(ds.queries.view(), 10);
    for (auto &list : expected)
        for (auto &nb : list) // reference rows -> external ids
            nb.id = u.ids[static_cast<std::size_t>(nb.id)];
    EXPECT_EQ(live.search(ds.queries.view(), 10), expected);
}

TEST(LiveIndexParity, MergeBitwiseFlat)
{
    checkMergeParityBitwise("flat");
}

TEST(LiveIndexParity, MergeBitwiseIvfFlatRebuild)
{
    checkMergeParityBitwise("ivfflat:nlist=8,nprobe=4,seed=7");
}

TEST(LiveIndexParity, IncrementalIvfMergeRecallParity)
{
    const Dataset ds = smallDataset(1500, 24, 16);
    const Dataset extra = smallDataset(150, 1, 16, 31337);
    const std::string spec = "ivfflat:nlist=16,nprobe=4,seed=7";
    LiveConfig cfg;
    cfg.auto_merge = false;
    cfg.incremental = true; // reuse gen-0 centroids, skip k-means
    LiveIndex live(ds.metric, ds.base.view(), spec, cfg);

    std::set<idx_t> deleted;
    for (idx_t id = 0; id < 50; ++id) {
        deleted.insert(id);
        ASSERT_EQ(live.remove(id), MutateStatus::kOk);
    }
    std::vector<std::pair<idx_t, std::vector<float>>> fresh;
    for (idx_t i = 0; i < extra.base.rows(); ++i) {
        const float *v = extra.base.row(i);
        fresh.emplace_back(10000 + i, std::vector<float>(v, v + 16));
        ASSERT_EQ(live.insert(fresh.back().second.data(), 10000 + i),
                  MutateStatus::kOk);
    }
    ASSERT_TRUE(live.mergeNow());

    const UnionSet u = makeUnion(ds.base, deleted, fresh);
    FlatIndex exact(ds.metric, u.points.view());
    auto truth = exact.search(ds.queries.view(), 10);
    for (auto &list : truth)
        for (auto &nb : list)
            nb.id = u.ids[static_cast<std::size_t>(nb.id)];
    const auto rebuilt = buildIndex(ds.metric, u.points.view(), spec);
    auto rebuilt_res = rebuilt->search(ds.queries.view(), 10);
    for (auto &list : rebuilt_res)
        for (auto &nb : list)
            nb.id = u.ids[static_cast<std::size_t>(nb.id)];

    // Recall parity: centroid reuse is approximate w.r.t. retrained
    // k-means, so compare retrieval quality, not bits.
    auto recallOf = [&](const SearchResults &got) {
        std::size_t hit = 0, total = 0;
        for (std::size_t q = 0; q < got.size(); ++q) {
            std::unordered_set<idx_t> want;
            for (const auto &nb : truth[q])
                want.insert(nb.id);
            for (const auto &nb : got[q])
                hit += want.count(nb.id);
            total += truth[q].size();
        }
        return static_cast<double>(hit) /
               static_cast<double>(total);
    };
    const double r_live = recallOf(live.search(ds.queries.view(), 10));
    const double r_rebuilt = recallOf(rebuilt_res);
    EXPECT_NEAR(r_live, r_rebuilt, 0.05);
    EXPECT_GT(r_live, 0.5);
}

TEST(LiveIndex, SnapshotGenerationsOnDisk)
{
    const Dataset ds = smallDataset();
    LiveConfig cfg;
    cfg.auto_merge = false;
    cfg.snapshot_dir = ::testing::TempDir();
    LiveIndex live(ds.metric, ds.base.view(), "flat", cfg);
    std::vector<float> vec(static_cast<std::size_t>(ds.base.cols()),
                           0.25f);
    ASSERT_EQ(live.insert(vec.data(), 900), MutateStatus::kOk);
    ASSERT_TRUE(live.mergeNow());

    const std::string path = cfg.snapshot_dir + "/gen-1.juno";
    const auto reopened = openIndex(path, SnapshotOptions{});
    EXPECT_EQ(reopened->size(), live.size());
    // The live index now serves through the mmap'd generation; its
    // answers match the independently reopened snapshot (mapped
    // through the identity row order of a no-delete merge).
    auto expected = reopened->search(ds.queries.view(), 10);
    const auto got = live.search(ds.queries.view(), 10);
    EXPECT_EQ(got.size(), expected.size());
    for (std::size_t q = 0; q < got.size(); ++q)
        EXPECT_EQ(got[q].size(), expected[q].size());
}

TEST(LiveIndex, DegradedMainScanStaysMarkedThroughOverlayMerge)
{
    const Dataset ds = smallDataset(600, 8, 16);
    LiveConfig cfg;
    cfg.auto_merge = false;
    LiveIndex live(ds.metric, ds.base.view(),
                   "ivfflat:nlist=8,nprobe=8,seed=3", cfg);
    // Non-pristine: one fresh row forces the overlay-merge path.
    const float *q0 = ds.queries.row(0);
    std::vector<float> vec(q0, q0 + ds.base.cols());
    ASSERT_EQ(live.insert(vec.data(), 4000), MutateStatus::kOk);

    std::vector<std::uint8_t> degraded;
    SearchRequest request(ds.queries.view(), SearchOptions{});
    request.options.k = 5;
    request.options.degraded = &degraded;
    // A deadline already in the past cuts the nested main-index scan
    // to its first probe list; the flag must survive the merge with
    // the fresh-buffer hits instead of being dropped with the nested
    // request.
    request.options.deadline =
        std::chrono::steady_clock::now() - std::chrono::seconds(1);
    const auto res = live.search(request);
    ASSERT_EQ(degraded.size(), static_cast<std::size_t>(8));
    for (std::size_t q = 0; q < degraded.size(); ++q)
        EXPECT_EQ(degraded[q], 1) << "query " << q;
    // The fresh buffer is still scanned exactly: the inserted copy of
    // query 0 wins despite the degraded main scan.
    EXPECT_EQ(res[0].front().id, 4000);
}

TEST(LiveIndex, ServiceMutationPlumbing)
{
    const Dataset ds = smallDataset();
    LiveConfig cfg;
    cfg.auto_merge = false;
    LiveIndex live(ds.metric, ds.base.view(), "flat", cfg);

    MetricsRegistry registry;
    ServiceConfig sc;
    sc.registry = &registry;
    SearchService service(live, sc);
    EXPECT_TRUE(service.liveEnabled());
    // Admission before start(): typed kStopped, never an exception.
    std::vector<float> vec(static_cast<std::size_t>(ds.base.cols()),
                           0.75f);
    EXPECT_EQ(service.insert(vec.data(), 800), MutateStatus::kStopped);
    service.start();

    const float *q0 = ds.queries.row(0);
    std::vector<float> qvec(q0, q0 + ds.base.cols());
    EXPECT_EQ(service.insert(qvec.data(), 800), MutateStatus::kOk);
    EXPECT_EQ(service.remove(2), MutateStatus::kOk);
    EXPECT_EQ(service.upsert(qvec.data(), 800), MutateStatus::kOk);
    EXPECT_EQ(service.remove(999999), MutateStatus::kUnknownId);

    // The write is visible through the serving read path.
    auto fut = service.submit(qvec, 1);
    EXPECT_EQ(fut.get().front().id, 800);

    const auto snap = service.snapshot();
    EXPECT_TRUE(snap.live_enabled);
    EXPECT_EQ(snap.live_inserts, 1u);
    EXPECT_EQ(snap.live_removes, 1u);
    EXPECT_EQ(snap.live_upserts, 1u);
    EXPECT_EQ(snap.live_rejected, 2u); // kStopped + kUnknownId
    EXPECT_EQ(snap.live.live_count, live.size());
    const std::string prom = registry.renderPrometheus();
    EXPECT_NE(prom.find("juno_live_ops_total"), std::string::npos);
    EXPECT_NE(prom.find("juno_live_fresh_rows"), std::string::npos);
    service.stop();
    EXPECT_EQ(service.insert(vec.data(), 801), MutateStatus::kStopped);
}

TEST(LiveIndex, ServiceOnImmutableIndexRefusesTyped)
{
    const Dataset ds = smallDataset();
    FlatIndex flat(ds.metric, ds.base.view());
    ServiceConfig sc;
    sc.metrics = false;
    SearchService service(flat, sc);
    service.start();
    EXPECT_FALSE(service.liveEnabled());
    std::vector<float> vec(static_cast<std::size_t>(ds.base.cols()),
                           0.0f);
    EXPECT_EQ(service.insert(vec.data(), 1),
              MutateStatus::kUnsupported);
    EXPECT_EQ(service.remove(1), MutateStatus::kUnsupported);
    EXPECT_FALSE(service.snapshot().live_enabled);
    service.stop();
}

TEST(LiveIndexStress, MergeVsSearch)
{
    const Dataset ds = smallDataset(400, 8, 8);
    const idx_t d = ds.base.cols();
    LiveConfig cfg;
    cfg.fresh_capacity = 512;
    cfg.merge_threshold = 48; // several background merges per run
    cfg.auto_merge = true;
    LiveIndex live(ds.metric, ds.base.view(), "flat", cfg);

    // Ids [0, 20) die before any reader starts and are never reused:
    // a search returning one is a correctness bug, not a race.
    for (idx_t id = 0; id < 20; ++id)
        ASSERT_EQ(live.remove(id), MutateStatus::kOk);

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> applied_inserts{0}, applied_removes{0};
    std::thread writer([&] {
        std::vector<float> vec(static_cast<std::size_t>(d));
        idx_t next_id = 1000;
        std::uint64_t i = 0;
        while (!stop.load()) {
            for (idx_t j = 0; j < d; ++j)
                vec[static_cast<std::size_t>(j)] =
                    static_cast<float>((next_id + j) % 97) * 0.01f;
            const MutateStatus st = live.insert(vec.data(), next_id);
            if (st == MutateStatus::kOk) {
                applied_inserts.fetch_add(1);
                if (next_id % 3 == 0 &&
                    live.remove(next_id) == MutateStatus::kOk)
                    applied_removes.fetch_add(1);
                ++next_id;
            } else {
                std::this_thread::yield();
            }
            if (++i % 16 == 0) // steady upsert pressure on main rows
                live.upsert(vec.data(),
                            20 + static_cast<idx_t>(i % 380));
        }
    });

    std::vector<std::thread> readers;
    std::atomic<int> violations{0};
    for (int r = 0; r < 2; ++r)
        readers.emplace_back([&] {
            for (int it = 0; it < 150 && violations.load() == 0;
                 ++it) {
                const auto res = live.search(ds.queries.view(), 10);
                for (const auto &list : res) {
                    if (!idsUnique(list)) {
                        violations.fetch_add(1);
                        break;
                    }
                    for (const auto &nb : list) {
                        const bool ghost = nb.id < 20;
                        const bool alien =
                            nb.id >= 400 && nb.id < 1000;
                        if (ghost || alien) {
                            violations.fetch_add(1);
                            break;
                        }
                    }
                }
            }
        });
    for (auto &t : readers)
        t.join();
    stop.store(true);
    writer.join();
    EXPECT_EQ(violations.load(), 0);

    // Op conservation: every applied mutation is accounted for in the
    // final live count (writers only remove ids they inserted).
    const LiveStats stats = live.liveStats();
    EXPECT_EQ(stats.inserts, applied_inserts.load());
    EXPECT_EQ(stats.removes, applied_removes.load() + 20);
    EXPECT_EQ(static_cast<std::uint64_t>(stats.live_count),
              380 + applied_inserts.load() - applied_removes.load());
    EXPECT_GT(stats.merges, 0u); // the background thread really ran
}

TEST(LiveIndexStress, SwapVsReader)
{
    const Dataset ds = smallDataset(300, 6, 8);
    const idx_t d = ds.base.cols();
    LiveConfig cfg;
    cfg.auto_merge = false; // swaps driven synchronously below
    LiveIndex live(ds.metric, ds.base.view(), "flat", cfg);

    std::atomic<bool> stop{false};
    std::atomic<int> violations{0};
    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r)
        readers.emplace_back([&] {
            while (!stop.load() && violations.load() == 0) {
                const auto res = live.search(ds.queries.view(), 8);
                for (const auto &list : res)
                    if (list.empty() || !idsUnique(list))
                        violations.fetch_add(1);
            }
        });

    // 20 generations swap under the readers, each with interleaved
    // inserts and deletes of the previous round's rows.
    std::vector<float> vec(static_cast<std::size_t>(d), 0.125f);
    idx_t next_id = 5000;
    for (int round = 0; round < 20; ++round) {
        for (int i = 0; i < 8; ++i)
            live.insert(vec.data(), next_id++);
        live.remove(next_id - 3);
        live.mergeNow();
    }
    stop.store(true);
    for (auto &t : readers)
        t.join();
    EXPECT_EQ(violations.load(), 0);
    EXPECT_EQ(live.generation(), 20u);
    EXPECT_EQ(live.liveStats().generations_published, 20u);
    // 300 initial + 160 inserts - 20 deletes.
    EXPECT_EQ(live.size(), 440);
}

} // namespace
} // namespace juno
