/** @file Tests for the synthetic dataset generators. */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/distance.h"
#include "common/logging.h"
#include "dataset/synthetic.h"

namespace juno {
namespace {

TEST(Synthetic, NativeDimsAndMetrics)
{
    EXPECT_EQ(nativeDim(DatasetKind::kSiftLike), 128);
    EXPECT_EQ(nativeDim(DatasetKind::kDeepLike), 96);
    EXPECT_EQ(nativeDim(DatasetKind::kTtiLike), 200);
    EXPECT_EQ(nativeMetric(DatasetKind::kTtiLike), Metric::kInnerProduct);
    EXPECT_EQ(nativeMetric(DatasetKind::kSiftLike), Metric::kL2);
}

TEST(Synthetic, ShapesMatchSpec)
{
    SyntheticSpec spec;
    spec.kind = DatasetKind::kDeepLike;
    spec.num_points = 500;
    spec.num_queries = 20;
    const auto ds = makeDataset(spec);
    EXPECT_EQ(ds.base.rows(), 500);
    EXPECT_EQ(ds.base.cols(), 96);
    EXPECT_EQ(ds.queries.rows(), 20);
    EXPECT_EQ(ds.queries.cols(), 96);
    EXPECT_EQ(ds.metric, Metric::kL2);
}

TEST(Synthetic, DimOverride)
{
    SyntheticSpec spec;
    spec.kind = DatasetKind::kUniform;
    spec.num_points = 50;
    spec.dim = 10;
    const auto ds = makeDataset(spec);
    EXPECT_EQ(ds.base.cols(), 10);
}

TEST(Synthetic, DeterministicForSeed)
{
    SyntheticSpec spec;
    spec.num_points = 100;
    spec.num_queries = 5;
    spec.seed = 77;
    const auto a = makeDataset(spec);
    const auto b = makeDataset(spec);
    for (idx_t i = 0; i < a.base.rows(); ++i)
        for (idx_t j = 0; j < a.base.cols(); ++j)
            EXPECT_FLOAT_EQ(a.base.at(i, j), b.base.at(i, j));
}

TEST(Synthetic, SeedChangesData)
{
    SyntheticSpec spec;
    spec.num_points = 100;
    spec.seed = 1;
    const auto a = makeDataset(spec);
    spec.seed = 2;
    const auto b = makeDataset(spec);
    int identical = 0;
    for (idx_t i = 0; i < 100; ++i)
        identical += a.base.at(i, 0) == b.base.at(i, 0);
    EXPECT_LT(identical, 5);
}

TEST(Synthetic, SiftLikeIsByteRanged)
{
    SyntheticSpec spec;
    spec.kind = DatasetKind::kSiftLike;
    spec.num_points = 300;
    const auto ds = makeDataset(spec);
    for (idx_t i = 0; i < ds.base.rows(); ++i)
        for (idx_t j = 0; j < ds.base.cols(); ++j) {
            EXPECT_GE(ds.base.at(i, j), 0.0f);
            EXPECT_LE(ds.base.at(i, j), 255.0f);
        }
}

TEST(Synthetic, DeepLikeIsUnitNorm)
{
    SyntheticSpec spec;
    spec.kind = DatasetKind::kDeepLike;
    spec.num_points = 200;
    const auto ds = makeDataset(spec);
    for (idx_t i = 0; i < ds.base.rows(); ++i)
        EXPECT_NEAR(std::sqrt(l2NormSqr(ds.base.row(i), ds.base.cols())),
                    1.0f, 1e-4f);
}

TEST(Synthetic, ClusteredFamiliesAreNotUniform)
{
    // Clustered data should have markedly lower mean nearest-neighbour
    // distance than a uniform scatter in the same bounding box.
    SyntheticSpec spec;
    spec.kind = DatasetKind::kDeepLike;
    spec.num_points = 400;
    spec.components = 8;
    const auto ds = makeDataset(spec);

    double nn_sum = 0.0;
    for (idx_t i = 0; i < 50; ++i) {
        float best = std::numeric_limits<float>::max();
        for (idx_t j = 0; j < ds.base.rows(); ++j) {
            if (i == j)
                continue;
            best = std::min(best, l2Sqr(ds.base.row(i), ds.base.row(j),
                                        ds.base.cols()));
        }
        nn_sum += std::sqrt(best);
    }
    // Pairwise mean distance for comparison.
    double pair_sum = 0.0;
    int pairs = 0;
    for (idx_t i = 0; i < 50; ++i)
        for (idx_t j = i + 1; j < 50; ++j) {
            pair_sum += std::sqrt(l2Sqr(ds.base.row(i), ds.base.row(j),
                                        ds.base.cols()));
            ++pairs;
        }
    EXPECT_LT(nn_sum / 50.0, 0.5 * pair_sum / pairs);
}

TEST(Synthetic, RejectsBadSpecs)
{
    SyntheticSpec spec;
    spec.num_points = 0;
    EXPECT_THROW(makeDataset(spec), ConfigError);
    spec.num_points = 10;
    spec.components = 0;
    EXPECT_THROW(makeDataset(spec), ConfigError);
}

TEST(Synthetic, NameEncodesKindAndScale)
{
    SyntheticSpec spec;
    spec.kind = DatasetKind::kSiftLike;
    spec.num_points = 2000;
    const auto ds = makeDataset(spec);
    EXPECT_EQ(ds.name, "sift2k");
}

} // namespace
} // namespace juno
