/** @file Tests for the polynomial threshold regressor. */
#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "core/poly_regressor.h"

namespace juno {
namespace {

TEST(PolyRegressor, FitsConstant)
{
    PolyRegressor reg;
    reg.fit({1.0, 10.0, 100.0}, {5.0, 5.0, 5.0}, 0);
    EXPECT_NEAR(reg.predict(3.0), 5.0, 1e-9);
    EXPECT_NEAR(reg.predict(1000.0), 5.0, 1e-9);
}

TEST(PolyRegressor, FitsLinearInLogDensity)
{
    // y = 2 - 0.5 * log1p(d): exactly representable at degree 1.
    std::vector<double> d, y;
    for (double v : {0.0, 1.0, 5.0, 20.0, 100.0, 1000.0}) {
        d.push_back(v);
        y.push_back(2.0 - 0.5 * std::log1p(v));
    }
    PolyRegressor reg;
    reg.fit(d, y, 1);
    for (std::size_t i = 0; i < d.size(); ++i)
        EXPECT_NEAR(reg.predict(d[i]), y[i], 1e-6);
}

TEST(PolyRegressor, CapturesNegativeCorrelation)
{
    // The paper's observation: denser regions need smaller thresholds.
    Rng rng(3);
    std::vector<double> d, y;
    for (int i = 0; i < 200; ++i) {
        const double dens = std::pow(10.0, rng.uniform(0.0f, 5.0f));
        d.push_back(dens);
        y.push_back(150.0 / (1.0 + 0.4 * std::log1p(dens)) +
                    rng.gaussian(0.0, 2.0));
    }
    PolyRegressor reg;
    reg.fit(d, y, 3);
    EXPECT_GT(reg.predict(1.0), reg.predict(1e5));
    EXPECT_LT(reg.mse(d, y), 30.0);
}

TEST(PolyRegressor, PredictionClampedToTrainingRange)
{
    PolyRegressor reg;
    reg.fit({1.0, 10.0, 100.0, 1000.0}, {4.0, 3.0, 2.0, 1.0}, 2);
    // Far extrapolations stay within [1, 4].
    EXPECT_GE(reg.predict(0.0), 1.0);
    EXPECT_LE(reg.predict(0.0), 4.0);
    EXPECT_GE(reg.predict(1e12), 1.0);
    EXPECT_LE(reg.predict(1e12), 4.0);
}

TEST(PolyRegressor, DegreeZeroIsMeanLike)
{
    PolyRegressor reg;
    reg.fit({1.0, 2.0, 3.0, 4.0}, {1.0, 2.0, 3.0, 4.0}, 0);
    const double p = reg.predict(2.5);
    EXPECT_GT(p, 1.0);
    EXPECT_LT(p, 4.0);
}

TEST(PolyRegressor, RejectsBadInputs)
{
    PolyRegressor reg;
    EXPECT_THROW(reg.fit({1.0}, {1.0, 2.0}, 1), ConfigError);
    EXPECT_THROW(reg.fit({1.0, 2.0}, {1.0, 2.0}, 2), ConfigError);
    EXPECT_THROW(reg.fit({1.0, 2.0}, {1.0, 2.0}, -1), ConfigError);
    EXPECT_THROW(reg.predict(1.0), ConfigError);
}

TEST(PolyRegressor, MseIsZeroForPerfectFit)
{
    std::vector<double> d{0.0, 1.0, 4.0};
    std::vector<double> y;
    for (double v : d)
        y.push_back(1.0 + std::log1p(v));
    PolyRegressor reg;
    reg.fit(d, y, 1);
    EXPECT_NEAR(reg.mse(d, y), 0.0, 1e-10);
}

TEST(PolyRegressor, CoefficientsExposeDegree)
{
    PolyRegressor reg;
    reg.fit({1.0, 2.0, 3.0, 4.0, 5.0}, {1.0, 2.0, 3.0, 4.0, 5.0}, 3);
    EXPECT_EQ(reg.degree(), 3);
    EXPECT_EQ(reg.coefficients().size(), 4u);
}

} // namespace
} // namespace juno
