/** @file Unit + property tests for bounded top-k selection. */
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/rng.h"
#include "common/topk.h"

namespace juno {
namespace {

TEST(TopK, RejectsZeroK)
{
    EXPECT_THROW(TopK(0, Metric::kL2), ConfigError);
}

TEST(TopK, KeepsSmallestUnderL2)
{
    TopK top(3, Metric::kL2);
    for (idx_t i = 0; i < 10; ++i)
        top.push(i, static_cast<float>(10 - i));
    const auto out = top.take();
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].id, 9);
    EXPECT_EQ(out[1].id, 8);
    EXPECT_EQ(out[2].id, 7);
    EXPECT_FLOAT_EQ(out[0].score, 1.0f);
}

TEST(TopK, KeepsLargestUnderIp)
{
    TopK top(2, Metric::kInnerProduct);
    top.push(0, 0.5f);
    top.push(1, 2.5f);
    top.push(2, 1.5f);
    top.push(3, -1.0f);
    const auto out = top.take();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].id, 1);
    EXPECT_EQ(out[1].id, 2);
}

TEST(TopK, WorstAcceptedSentinelWhileNotFull)
{
    TopK top(4, Metric::kL2);
    top.push(0, 1.0f);
    EXPECT_EQ(top.worstAccepted(), worstScore(Metric::kL2));
    top.push(1, 2.0f);
    top.push(2, 3.0f);
    top.push(3, 4.0f);
    EXPECT_FLOAT_EQ(top.worstAccepted(), 4.0f);
}

TEST(TopK, WorstAcceptedTracksEvictions)
{
    TopK top(2, Metric::kL2);
    top.push(0, 5.0f);
    top.push(1, 3.0f);
    EXPECT_FLOAT_EQ(top.worstAccepted(), 5.0f);
    top.push(2, 1.0f); // evicts 5.0
    EXPECT_FLOAT_EQ(top.worstAccepted(), 3.0f);
}

TEST(TopK, FewerCandidatesThanK)
{
    TopK top(10, Metric::kL2);
    top.push(4, 0.5f);
    top.push(2, 0.25f);
    const auto out = top.take();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].id, 2);
}

TEST(TopK, TiesBreakById)
{
    TopK top(2, Metric::kL2);
    top.push(7, 1.0f);
    top.push(3, 1.0f);
    top.push(5, 1.0f);
    const auto out = top.take();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].id, 3);
    EXPECT_EQ(out[1].id, 5);
}

TEST(TopK, ResultsDoesNotConsume)
{
    TopK top(2, Metric::kL2);
    top.push(0, 1.0f);
    top.push(1, 2.0f);
    const auto first = top.results();
    const auto second = top.results();
    EXPECT_EQ(first, second);
    EXPECT_EQ(top.size(), 2);
}

TEST(TopK, SelectTopKDenseRow)
{
    const float scores[] = {5.0f, 1.0f, 3.0f, 0.5f, 4.0f};
    const auto out = selectTopK(Metric::kL2, scores, 5, 2);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].id, 3);
    EXPECT_EQ(out[1].id, 1);
}

TEST(TopK, SelectTopKArgbestMatchesHeapPath)
{
    // The k == 1 dense fast path must agree with the heap, including
    // on ties (smallest index wins).
    const float scores[] = {3.0f, 1.0f, 1.0f, 2.0f};
    for (Metric metric : {Metric::kL2, Metric::kInnerProduct}) {
        const auto fast = selectTopK(metric, scores, 4, 1);
        TopK top(1, metric);
        for (idx_t i = 0; i < 4; ++i)
            top.push(i, scores[i]);
        EXPECT_EQ(fast, top.take());
    }
    EXPECT_EQ(selectTopK(Metric::kL2, scores, 4, 1)[0].id, 1);
    EXPECT_EQ(selectTopK(Metric::kInnerProduct, scores, 4, 1)[0].id, 0);
}

TEST(TopK, SelectTopKArgbestSurvivesNan)
{
    // A NaN in (or leading) the row must not send the fast path's
    // equality scan off the end of the array.
    const float nan = std::numeric_limits<float>::quiet_NaN();
    const float leading[] = {nan, 2.0f, 1.0f};
    const auto from_nan = selectTopK(Metric::kL2, leading, 3, 1);
    ASSERT_EQ(from_nan.size(), 1u);
    EXPECT_GE(from_nan[0].id, 0);
    EXPECT_LT(from_nan[0].id, 3);
    const float inner[] = {2.0f, nan, 1.0f};
    const auto skips_nan = selectTopK(Metric::kL2, inner, 3, 1);
    ASSERT_EQ(skips_nan.size(), 1u);
    EXPECT_EQ(skips_nan[0].id, 2);
}

/** Property sweep: TopK matches full sort for random inputs. */
class TopKProperty : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(TopKProperty, MatchesFullSort)
{
    const int n = std::get<0>(GetParam());
    const int k = std::get<1>(GetParam());
    for (Metric metric : {Metric::kL2, Metric::kInnerProduct}) {
        Rng rng(1000 + static_cast<std::uint64_t>(n * 31 + k));
        std::vector<float> scores(static_cast<std::size_t>(n));
        for (auto &s : scores)
            s = rng.uniform(-10.0f, 10.0f);

        TopK top(k, metric);
        for (int i = 0; i < n; ++i)
            top.push(i, scores[static_cast<std::size_t>(i)]);
        const auto got = top.take();

        std::vector<Neighbor> all;
        for (int i = 0; i < n; ++i)
            all.push_back({i, scores[static_cast<std::size_t>(i)]});
        std::sort(all.begin(), all.end(),
                  [&](const Neighbor &a, const Neighbor &b) {
                      if (a.score != b.score)
                          return isBetter(metric, a.score, b.score);
                      return a.id < b.id;
                  });
        all.resize(std::min<std::size_t>(all.size(),
                                         static_cast<std::size_t>(k)));
        EXPECT_EQ(got, all) << "metric " << metricName(metric);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TopKProperty,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(10, 3),
                      std::make_tuple(100, 10), std::make_tuple(100, 100),
                      std::make_tuple(1000, 7), std::make_tuple(500, 499),
                      std::make_tuple(64, 1)));

} // namespace
} // namespace juno
