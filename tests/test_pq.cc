/** @file Tests for the product quantizer (paper Sec. 2.1 offline). */
#include <gtest/gtest.h>

#include <cmath>

#include "common/distance.h"
#include "common/logging.h"
#include "dataset/synthetic.h"
#include "quant/product_quantizer.h"

namespace juno {
namespace {

FloatMatrix
randomVectors(idx_t n, idx_t d, std::uint64_t seed)
{
    Rng rng(seed);
    FloatMatrix m(n, d);
    for (idx_t i = 0; i < n; ++i)
        for (idx_t j = 0; j < d; ++j)
            m.at(i, j) = rng.uniform(-1.0f, 1.0f);
    return m;
}

ProductQuantizer
trainSmall(const FloatMatrix &data, int subspaces, int entries)
{
    ProductQuantizer pq;
    PQParams params;
    params.num_subspaces = subspaces;
    params.entries = entries;
    params.max_iters = 15;
    pq.train(data.view(), params);
    return pq;
}

TEST(Pq, TrainSetsShape)
{
    const auto data = randomVectors(300, 8, 1);
    const auto pq = trainSmall(data, 4, 16);
    EXPECT_TRUE(pq.trained());
    EXPECT_EQ(pq.numSubspaces(), 4);
    EXPECT_EQ(pq.entries(), 16);
    EXPECT_EQ(pq.subDim(), 2);
    EXPECT_EQ(pq.dim(), 8);
    for (int s = 0; s < 4; ++s) {
        EXPECT_EQ(pq.codebook(s).rows(), 16);
        EXPECT_EQ(pq.codebook(s).cols(), 2);
    }
}

TEST(Pq, EncodePicksNearestEntry)
{
    const auto data = randomVectors(200, 6, 2);
    const auto pq = trainSmall(data, 3, 8);
    const auto codes = pq.encode(data.view());
    ASSERT_EQ(codes.num_points, 200);
    for (idx_t p = 0; p < 20; ++p) {
        for (int s = 0; s < 3; ++s) {
            const float *proj = data.row(p) + 2 * s;
            const entry_t chosen = codes.at(p, s);
            const float chosen_d =
                l2Sqr(proj, pq.entry(s, chosen), 2);
            for (entry_t e = 0; e < 8; ++e)
                EXPECT_LE(chosen_d, l2Sqr(proj, pq.entry(s, e), 2) + 1e-6f)
                    << "point " << p << " subspace " << s;
        }
    }
}

TEST(Pq, DecodeIsConcatenationOfEntries)
{
    const auto data = randomVectors(150, 4, 3);
    const auto pq = trainSmall(data, 2, 8);
    const auto codes = pq.encode(data.view());
    const auto rec = pq.decode(codes.row(0));
    ASSERT_EQ(rec.size(), 4u);
    EXPECT_FLOAT_EQ(rec[0], pq.entry(0, codes.at(0, 0))[0]);
    EXPECT_FLOAT_EQ(rec[1], pq.entry(0, codes.at(0, 0))[1]);
    EXPECT_FLOAT_EQ(rec[2], pq.entry(1, codes.at(0, 1))[0]);
    EXPECT_FLOAT_EQ(rec[3], pq.entry(1, codes.at(0, 1))[1]);
}

TEST(Pq, MoreEntriesReduceReconstructionError)
{
    const auto data = randomVectors(500, 8, 4);
    const auto pq_small = trainSmall(data, 4, 4);
    const auto pq_large = trainSmall(data, 4, 64);
    EXPECT_LT(pq_large.reconstructionError(data.view()),
              pq_small.reconstructionError(data.view()));
}

TEST(Pq, LutMatchesDirectScoresL2)
{
    const auto data = randomVectors(200, 6, 5);
    const auto pq = trainSmall(data, 3, 16);
    const auto query = randomVectors(1, 6, 99);
    FloatMatrix lut;
    pq.computeLut(Metric::kL2, query.row(0), lut);
    ASSERT_EQ(lut.rows(), 3);
    ASSERT_EQ(lut.cols(), 16);
    for (int s = 0; s < 3; ++s)
        for (entry_t e = 0; e < 16; ++e)
            EXPECT_NEAR(lut.at(s, e),
                        l2Sqr(query.row(0) + 2 * s, pq.entry(s, e), 2),
                        1e-5f);
}

TEST(Pq, LutMatchesDirectScoresIp)
{
    const auto data = randomVectors(200, 6, 6);
    const auto pq = trainSmall(data, 3, 16);
    const auto query = randomVectors(1, 6, 98);
    FloatMatrix lut;
    pq.computeLut(Metric::kInnerProduct, query.row(0), lut);
    for (int s = 0; s < 3; ++s)
        for (entry_t e = 0; e < 16; ++e)
            EXPECT_NEAR(
                lut.at(s, e),
                innerProduct(query.row(0) + 2 * s, pq.entry(s, e), 2),
                1e-5f);
}

TEST(Pq, LutScoreSumsSubspaceCells)
{
    const auto data = randomVectors(100, 4, 7);
    const auto pq = trainSmall(data, 2, 8);
    const auto codes = pq.encode(data.view());
    FloatMatrix lut;
    pq.computeLut(Metric::kL2, data.row(0), lut);
    const float total = pq.lutScore(lut, codes.row(1));
    EXPECT_NEAR(total,
                lut.at(0, codes.at(1, 0)) + lut.at(1, codes.at(1, 1)),
                1e-6f);
}

TEST(Pq, AdcApproximatesTrueDistance)
{
    // ADC distance (sum of per-subspace LUT cells at the point's codes)
    // must approximate the true L2^2 within the quantisation error.
    const auto data = randomVectors(400, 8, 8);
    const auto pq = trainSmall(data, 4, 64);
    const auto codes = pq.encode(data.view());
    const auto query = randomVectors(1, 8, 97);
    FloatMatrix lut;
    pq.computeLut(Metric::kL2, query.row(0), lut);
    double total_err = 0.0;
    for (idx_t p = 0; p < 100; ++p) {
        const float adc = pq.lutScore(lut, codes.row(p));
        const float exact = l2Sqr(query.row(0), data.row(p), 8);
        total_err += std::abs(adc - exact);
    }
    // Average ADC error well below the average distance scale (~ d/3).
    EXPECT_LT(total_err / 100.0, 0.8);
}

TEST(Pq, SupportsNonTwoSubDims)
{
    const auto data = randomVectors(200, 12, 9);
    ProductQuantizer pq;
    PQParams params;
    params.num_subspaces = 3; // subDim = 4
    params.entries = 8;
    pq.train(data.view(), params);
    EXPECT_EQ(pq.subDim(), 4);
    const auto codes = pq.encode(data.view());
    EXPECT_EQ(codes.num_subspaces, 3);
}

TEST(Pq, RejectsIndivisibleDim)
{
    const auto data = randomVectors(50, 7, 10);
    ProductQuantizer pq;
    PQParams params;
    params.num_subspaces = 2;
    params.entries = 4;
    EXPECT_THROW(pq.train(data.view(), params), ConfigError);
}

TEST(Pq, RejectsBadEntryCount)
{
    const auto data = randomVectors(50, 4, 11);
    ProductQuantizer pq;
    PQParams params;
    params.num_subspaces = 2;
    params.entries = 1;
    EXPECT_THROW(pq.train(data.view(), params), ConfigError);
}

TEST(Pq, EncodeRejectsWrongDim)
{
    const auto data = randomVectors(100, 4, 12);
    const auto pq = trainSmall(data, 2, 8);
    const auto wrong = randomVectors(3, 6, 13);
    EXPECT_THROW(pq.encode(wrong.view()), ConfigError);
}

} // namespace
} // namespace juno
