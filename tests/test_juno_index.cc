/** @file Tests for the end-to-end JunoIndex. */
#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/juno_index.h"
#include "dataset/ground_truth.h"
#include "dataset/recall.h"
#include "dataset/synthetic.h"

namespace juno {
namespace {

Dataset
makeData(Metric metric, idx_t n = 2000, idx_t dim = 16)
{
    SyntheticSpec spec;
    spec.kind = metric == Metric::kL2 ? DatasetKind::kDeepLike
                                      : DatasetKind::kTtiLike;
    spec.num_points = n;
    spec.num_queries = 25;
    spec.dim = dim;
    spec.components = 16;
    spec.seed = 88;
    return makeDataset(spec);
}

JunoParams
smallParams()
{
    JunoParams params;
    params.clusters = 20;
    params.pq_entries = 32;
    params.nprobs = 6;
    params.density_grid = 40;
    params.policy.train_samples = 80;
    params.policy.ref_samples = 1000;
    params.policy.contain_topk = 50;
    return params;
}

TEST(JunoIndex, BuildsAllComponents)
{
    const auto ds = makeData(Metric::kL2);
    JunoIndex index(Metric::kL2, ds.base.view(), smallParams());
    EXPECT_EQ(index.size(), 2000);
    EXPECT_TRUE(index.ivf().built());
    EXPECT_TRUE(index.pq().trained());
    EXPECT_TRUE(index.interestIndex().built());
    EXPECT_TRUE(index.densityMap().built());
    EXPECT_TRUE(index.thresholdPolicy().trained());
    EXPECT_TRUE(index.junoScene().built());
    EXPECT_EQ(index.pq().numSubspaces(), 8); // dim 16 -> 8 subspaces
}

TEST(JunoIndex, JunoHReachesHighRecallWithFullProbing)
{
    const auto ds = makeData(Metric::kL2);
    auto params = junoPresetH(smallParams());
    params.nprobs = 20;
    JunoIndex index(Metric::kL2, ds.base.view(), params);
    const auto gt = computeGroundTruth(Metric::kL2, ds.base.view(),
                                       ds.queries.view(), 10);
    const auto results = index.search(ds.queries.view(), 100);
    EXPECT_GE(recall1AtK(gt, results), 0.8);
}

TEST(JunoIndex, PresetsConfigureModes)
{
    EXPECT_EQ(junoPresetH().mode, SearchMode::kExactDistance);
    EXPECT_EQ(junoPresetM().mode, SearchMode::kRewardPenalty);
    EXPECT_EQ(junoPresetL().mode, SearchMode::kHitCount);
}

TEST(JunoIndex, QualityOrderingAcrossModes)
{
    // JUNO-H (exact distances) should recall at least as well as the
    // count-based modes at the same operating point.
    const auto ds = makeData(Metric::kL2);
    auto params = smallParams();
    params.nprobs = 12;
    JunoIndex index(Metric::kL2, ds.base.view(), params);
    const auto gt = computeGroundTruth(Metric::kL2, ds.base.view(),
                                       ds.queries.view(), 10);

    index.setSearchMode(SearchMode::kExactDistance);
    const double rh = recall1AtK(gt, index.search(ds.queries.view(), 100));
    index.setSearchMode(SearchMode::kRewardPenalty);
    const double rm = recall1AtK(gt, index.search(ds.queries.view(), 100));
    index.setSearchMode(SearchMode::kHitCount);
    const double rl = recall1AtK(gt, index.search(ds.queries.view(), 100));

    EXPECT_GE(rh, rl - 0.1);
    EXPECT_GE(rh, 0.6);
    EXPECT_GT(rm, 0.0);
    EXPECT_GT(rl, 0.0);
}

TEST(JunoIndex, RecallMonotoneInNprobs)
{
    const auto ds = makeData(Metric::kL2);
    JunoIndex index(Metric::kL2, ds.base.view(),
                    junoPresetH(smallParams()));
    const auto gt = computeGroundTruth(Metric::kL2, ds.base.view(),
                                       ds.queries.view(), 10);
    double prev = -1.0;
    for (idx_t nprobs : {2, 8, 20}) {
        index.setNprobs(nprobs);
        const double r =
            recall1AtK(gt, index.search(ds.queries.view(), 100));
        EXPECT_GE(r, prev - 0.08) << "nprobs " << nprobs;
        prev = r;
    }
}

TEST(JunoIndex, ScaleTradesRecallForFewerHits)
{
    const auto ds = makeData(Metric::kL2);
    auto params = junoPresetH(smallParams());
    params.nprobs = 12;
    JunoIndex index(Metric::kL2, ds.base.view(), params);
    const auto gt = computeGroundTruth(Metric::kL2, ds.base.view(),
                                       ds.queries.view(), 10);

    index.setThresholdScale(1.0);
    index.device().resetStats();
    const double r_full =
        recall1AtK(gt, index.search(ds.queries.view(), 100));
    const auto hits_full = index.rtStats().hits;

    index.setThresholdScale(0.4);
    index.device().resetStats();
    const double r_small =
        recall1AtK(gt, index.search(ds.queries.view(), 100));
    const auto hits_small = index.rtStats().hits;

    EXPECT_LT(hits_small, hits_full);
    EXPECT_GE(r_full, r_small - 0.05);
}

TEST(JunoIndex, InnerProductSearchWorks)
{
    const auto ds = makeData(Metric::kInnerProduct);
    auto params = junoPresetH(smallParams());
    params.nprobs = 20;
    JunoIndex index(Metric::kInnerProduct, ds.base.view(), params);
    const auto gt = computeGroundTruth(Metric::kInnerProduct,
                                       ds.base.view(), ds.queries.view(),
                                       10);
    const auto results = index.search(ds.queries.view(), 100);
    EXPECT_GE(recall1AtK(gt, results), 0.5);
}

TEST(JunoIndex, RtAndFallbackGiveSameResults)
{
    const auto ds = makeData(Metric::kL2);
    JunoIndex index(Metric::kL2, ds.base.view(),
                    junoPresetH(smallParams()));
    const auto rt_results = index.search(ds.queries.view(), 20);
    index.setUseRtCore(false);
    const auto fb_results = index.search(ds.queries.view(), 20);
    for (std::size_t q = 0; q < rt_results.size(); ++q) {
        ASSERT_EQ(rt_results[q].size(), fb_results[q].size());
        for (std::size_t i = 0; i < rt_results[q].size(); ++i)
            EXPECT_EQ(rt_results[q][i].id, fb_results[q][i].id);
    }
}

TEST(JunoIndex, PipelinedMatchesSequentialResults)
{
    const auto ds = makeData(Metric::kL2);
    JunoIndex index(Metric::kL2, ds.base.view(),
                    junoPresetH(smallParams()));
    const auto seq = index.search(ds.queries.view(), 15);
    index.setPipelined(true);
    const auto pipe = index.search(ds.queries.view(), 15);
    EXPECT_EQ(seq, pipe);
}

TEST(JunoIndex, StageTimersPopulated)
{
    const auto ds = makeData(Metric::kL2);
    JunoIndex index(Metric::kL2, ds.base.view(),
                    junoPresetH(smallParams()));
    index.search(ds.queries.view(), 10);
    EXPECT_GT(index.stageTimers().seconds("filter"), 0.0);
    EXPECT_GT(index.stageTimers().seconds("rt_lut"), 0.0);
    EXPECT_GT(index.stageTimers().seconds("scan"), 0.0);
}

TEST(JunoIndex, StaticThresholdModesWork)
{
    const auto ds = makeData(Metric::kL2);
    JunoIndex index(Metric::kL2, ds.base.view(),
                    junoPresetH(smallParams()));
    const auto gt = computeGroundTruth(Metric::kL2, ds.base.view(),
                                       ds.queries.view(), 10);

    index.setThresholdMode(ThresholdMode::kStaticLarge);
    index.device().resetStats();
    const double r_large =
        recall1AtK(gt, index.search(ds.queries.view(), 100));
    const auto hits_large = index.rtStats().hits;

    index.setThresholdMode(ThresholdMode::kStaticSmall);
    index.device().resetStats();
    recall1AtK(gt, index.search(ds.queries.view(), 100));
    const auto hits_small = index.rtStats().hits;

    // Large static threshold does more work (more hits) and should be
    // at least as accurate as anything smaller.
    EXPECT_GT(hits_large, hits_small);
    EXPECT_GT(r_large, 0.0);
}

TEST(JunoIndex, NameEncodesPreset)
{
    const auto ds = makeData(Metric::kL2);
    JunoIndex index(Metric::kL2, ds.base.view(),
                    junoPresetL(smallParams()));
    EXPECT_NE(index.name().find("JUNO-L"), std::string::npos);
    EXPECT_NE(index.name().find("C=20"), std::string::npos);
}

TEST(JunoIndex, RejectsBadConfigs)
{
    const auto ds = makeData(Metric::kL2);
    auto params = smallParams();
    params.nprobs = 0;
    EXPECT_THROW(JunoIndex(Metric::kL2, ds.base.view(), params),
                 ConfigError);

    SyntheticSpec odd;
    odd.kind = DatasetKind::kUniform;
    odd.num_points = 100;
    odd.dim = 7; // odd dimension cannot form 2-D subspaces
    const auto odd_ds = makeDataset(odd);
    EXPECT_THROW(JunoIndex(Metric::kL2, odd_ds.base.view(), smallParams()),
                 ConfigError);

    JunoIndex ok(Metric::kL2, ds.base.view(), smallParams());
    EXPECT_THROW(ok.setThresholdScale(0.0), ConfigError);
    EXPECT_THROW(ok.setThresholdScale(1.5), ConfigError);
    EXPECT_THROW(ok.setNprobs(0), ConfigError);
}

} // namespace
} // namespace juno
