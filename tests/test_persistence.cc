/**
 * @file
 * Lifecycle parity tests: every index type must round-trip
 * save() -> openIndex() with bitwise-identical search results to the
 * never-serialized index, in both buffered and mmap modes and across
 * thread counts; spec strings must rebuild equivalent indexes.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baseline/ivfflat_index.h"
#include "dataset/synthetic.h"
#include "registry/index_factory.h"
#include "serve/search_service.h"

namespace juno {
namespace {

std::string
tempPath(const std::string &name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

Dataset
makeData(Metric metric)
{
    SyntheticSpec spec;
    spec.kind = metric == Metric::kL2 ? DatasetKind::kDeepLike
                                      : DatasetKind::kTtiLike;
    spec.num_points = 1200;
    spec.num_queries = 10;
    spec.dim = 12;
    spec.components = 10;
    spec.seed = 404;
    return makeDataset(spec);
}

SearchResults
searchWith(AnnIndex &index, FloatMatrixView queries, idx_t k,
           int threads)
{
    SearchRequest request(queries, k);
    request.options.threads = threads;
    return index.search(request);
}

/** Build from @p spec, snapshot, re-open both ways, demand parity. */
void
expectRoundTrip(Metric metric, const std::string &spec)
{
    SCOPED_TRACE(spec);
    const auto ds = makeData(metric);
    auto built = buildIndex(metric, ds.base.view(), spec);
    const auto path = tempPath("roundtrip.juno");
    built->save(path);

    // Canonical spec round-trips as text and describes the rebuild.
    const auto canonical = IndexSpec::parse(built->spec());
    EXPECT_EQ(IndexSpec::parse(canonical.toString()), canonical);

    const auto expected_t1 = searchWith(*built, ds.queries.view(), 20, 1);
    const auto expected_t4 = searchWith(*built, ds.queries.view(), 20, 4);
    // The engine guarantees thread-count invariance; rely on it here
    // so the snapshot comparison below covers both shard shapes.
    EXPECT_EQ(expected_t1, expected_t4);

    for (const bool use_mmap : {false, true}) {
        SCOPED_TRACE(use_mmap ? "mmap" : "buffered");
        SnapshotOptions options;
        options.use_mmap = use_mmap;
        auto reopened = openIndex(path, options);
        EXPECT_EQ(reopened->name(), built->name());
        EXPECT_EQ(reopened->spec(), built->spec());
        EXPECT_EQ(reopened->metric(), built->metric());
        EXPECT_EQ(reopened->size(), built->size());
        EXPECT_EQ(reopened->dim(), built->dim());
        EXPECT_EQ(searchWith(*reopened, ds.queries.view(), 20, 1),
                  expected_t1);
        EXPECT_EQ(searchWith(*reopened, ds.queries.view(), 20, 4),
                  expected_t1);
    }
    std::remove(path.c_str());
}

TEST(Persistence, FlatRoundTrips)
{
    expectRoundTrip(Metric::kL2, "flat");
    expectRoundTrip(Metric::kInnerProduct, "flat");
}

TEST(Persistence, IvfFlatRoundTrips)
{
    expectRoundTrip(Metric::kL2, "ivfflat:nlist=16,nprobe=4");
}

TEST(Persistence, IvfPqRoundTrips)
{
    // 256-entry codebooks: interleaved float-scan tier.
    expectRoundTrip(Metric::kL2,
                    "ivfpq:nlist=16,m=6,entries=32,nprobe=4");
    expectRoundTrip(Metric::kInnerProduct,
                    "ivfpq:nlist=16,m=6,entries=32,nprobe=4");
}

TEST(Persistence, IvfPqFastScanAndRouterRoundTrip)
{
    // entries <= 16 builds the nibble-packed fast-scan plane; hnsw=1
    // adds the centroid router. Both must be restored, not rebuilt.
    expectRoundTrip(
        Metric::kL2,
        "ivfpq:nlist=16,m=6,entries=16,nprobe=4,hnsw=1,hnsw_m=8");
}

TEST(Persistence, IvfPqLegacyGatherRoundTrips)
{
    expectRoundTrip(
        Metric::kL2,
        "ivfpq:nlist=16,m=6,entries=32,nprobe=4,interleaved=0");
}

TEST(Persistence, HnswRoundTrips)
{
    expectRoundTrip(Metric::kL2, "hnsw:m=8,efc=40,ef=32");
    expectRoundTrip(Metric::kInnerProduct, "hnsw:m=8,efc=40,ef=32");
}

TEST(Persistence, JunoRoundTrips)
{
    expectRoundTrip(Metric::kL2,
                    "juno:nlist=16,entries=32,nprobe=6,grid=30,"
                    "psamples=60,prefs=800,ptopk=40");
    expectRoundTrip(Metric::kInnerProduct,
                    "juno:nlist=16,entries=32,nprobe=6,mode=m,"
                    "grid=30,psamples=60,prefs=800,ptopk=40");
}

TEST(Persistence, RtExactRoundTrips)
{
    expectRoundTrip(Metric::kL2, "rtexact");
}

TEST(Persistence, SpecRebuildMatchesOriginal)
{
    // buildIndex(spec()) reproduces the index bit-for-bit: the core
    // contract the CLI parity gate and the bench cache rely on.
    const auto ds = makeData(Metric::kL2);
    auto first = buildIndex(Metric::kL2, ds.base.view(),
                            "ivfpq:nlist=16,m=6,entries=16,nprobe=4");
    auto second = buildIndex(Metric::kL2, ds.base.view(), first->spec());
    EXPECT_EQ(first->spec(), second->spec());
    EXPECT_EQ(searchWith(*first, ds.queries.view(), 20, 1),
              searchWith(*second, ds.queries.view(), 20, 1));
}

TEST(Persistence, WrongTypeKnobsAreHarmless)
{
    // openIndex() returns the concrete registered type.
    const auto ds = makeData(Metric::kL2);
    auto built = buildIndex(Metric::kL2, ds.base.view(),
                            "ivfflat:nlist=16,nprobe=4");
    const auto path = tempPath("typed.juno");
    built->save(path);
    auto reopened = openIndex(path);
    EXPECT_NE(dynamic_cast<IvfFlatIndex *>(reopened.get()), nullptr);
    std::remove(path.c_str());
}

TEST(Persistence, ServiceWarmStartsFromSnapshot)
{
    const auto ds = makeData(Metric::kL2);
    auto built = buildIndex(Metric::kL2, ds.base.view(),
                            "ivfflat:nlist=16,nprobe=4");
    const auto path = tempPath("warmstart.juno");
    built->save(path);
    const auto expected = searchWith(*built, ds.queries.view(), 10, 1);

    ServiceConfig config;
    config.max_batch = 4;
    SearchService service(path, config);
    service.start();
    std::vector<std::future<ResultList>> futures;
    for (idx_t q = 0; q < ds.queries.rows(); ++q)
        futures.push_back(service.submit(ds.queries.view().row(q), 10));
    for (std::size_t q = 0; q < futures.size(); ++q) {
        ASSERT_TRUE(futures[q].valid());
        EXPECT_EQ(futures[q].get(), expected[q]);
    }
    service.stop();
    std::remove(path.c_str());
}

TEST(Persistence, UnknownSpecTypeRejected)
{
    const auto ds = makeData(Metric::kL2);
    EXPECT_THROW(buildIndex(Metric::kL2, ds.base.view(), "nosuch"),
                 ConfigError);
    EXPECT_THROW(
        buildIndex(Metric::kL2, ds.base.view(), "ivfflat:bogus=1"),
        ConfigError);
}

} // namespace
} // namespace juno
