/** @file Tests for Scene and the OptiX-like RtDevice facade. */
#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "rtcore/device.h"

namespace juno {
namespace rt {
namespace {

Scene
gridScene(int side, float radius = 0.2f)
{
    Scene scene;
    for (int i = 0; i < side; ++i)
        for (int j = 0; j < side; ++j) {
            Sphere s;
            s.center = {static_cast<float>(i), static_cast<float>(j), 1.0f};
            s.radius = radius;
            s.user_id =
                static_cast<std::uint64_t>(i * side + j);
            scene.addSphere(s);
        }
    scene.build();
    return scene;
}

TEST(Scene, AddAndBuild)
{
    const auto scene = gridScene(4);
    EXPECT_TRUE(scene.built());
    EXPECT_EQ(scene.sphereCount(), 16u);
    EXPECT_EQ(scene.sphere(5).user_id, 5u);
}

TEST(Scene, RejectsNonPositiveRadius)
{
    Scene scene;
    Sphere s;
    s.radius = 0.0f;
    EXPECT_THROW(scene.addSphere(s), ConfigError);
}

TEST(RtDevice, LaunchHitsExpectedSphere)
{
    const auto scene = gridScene(4);
    RtDevice device;
    std::vector<Ray> rays(1);
    rays[0].origin = {2.0f, 3.0f, 0.0f};
    rays[0].dir = {0, 0, 1};

    std::vector<std::uint64_t> hit_ids;
    device.launch(scene, rays, [&](const Ray &, const Hit &hit) {
        hit_ids.push_back(hit.user_id);
        return true;
    });
    ASSERT_EQ(hit_ids.size(), 1u);
    EXPECT_EQ(hit_ids[0], 2u * 4 + 3);
}

TEST(RtDevice, FallbackModeMatchesRtMode)
{
    const auto scene = gridScene(8, 0.45f);
    std::vector<Ray> rays;
    Rng rng(3);
    for (int i = 0; i < 40; ++i) {
        Ray ray;
        ray.origin = {rng.uniform(-0.5f, 7.5f), rng.uniform(-0.5f, 7.5f),
                      0.0f};
        ray.dir = {0, 0, 1};
        ray.payload = static_cast<std::uint64_t>(i);
        rays.push_back(ray);
    }

    auto collect = [&](ExecMode mode) {
        RtDevice device(mode);
        std::set<std::pair<std::uint64_t, std::uint64_t>> hits;
        device.launch(scene, rays, [&](const Ray &ray, const Hit &hit) {
            hits.insert({ray.payload, hit.user_id});
            return true;
        });
        return hits;
    };
    EXPECT_EQ(collect(ExecMode::kRtCore),
              collect(ExecMode::kCudaFallback));
}

TEST(RtDevice, StatsAccumulateAcrossLaunches)
{
    const auto scene = gridScene(4);
    RtDevice device;
    std::vector<Ray> rays(3);
    for (auto &r : rays) {
        r.origin = {0, 0, 0};
        r.dir = {0, 0, 1};
    }
    device.launch(scene, rays, [](const Ray &, const Hit &) { return true; });
    device.launch(scene, rays, [](const Ray &, const Hit &) { return true; });
    EXPECT_EQ(device.totalStats().rays, 6u);
    device.resetStats();
    EXPECT_EQ(device.totalStats().rays, 0u);
}

TEST(RtDevice, LaunchReturnsPerLaunchStats)
{
    const auto scene = gridScene(4);
    RtDevice device;
    std::vector<Ray> rays(2);
    for (auto &r : rays) {
        r.origin = {1, 1, 0};
        r.dir = {0, 0, 1};
    }
    const auto result = device.launch(
        scene, rays, [](const Ray &, const Hit &) { return true; });
    EXPECT_EQ(result.stats.rays, 2u);
    EXPECT_EQ(result.stats.hits, 2u);
    EXPECT_GE(result.seconds, 0.0);
}

TEST(RtCostModel, PresetsOrderAsExpected)
{
    // Gen-3 (4090) > Gen-2 (A40) > no-RT (A100) throughput.
    TraversalStats stats;
    stats.rays = 100;
    stats.node_visits = 1000;
    stats.prim_tests = 500;
    const double t4090 = costModelRtx4090().cost(stats);
    const double ta40 = costModelA40().cost(stats);
    const double ta100 = costModelA100().cost(stats);
    EXPECT_LT(t4090, ta40);
    EXPECT_LT(ta40, ta100);
    EXPECT_NEAR(ta40 / t4090, 2.0, 1e-9);
}

TEST(RtCostModel, CostScalesWithCounters)
{
    RtCostModel m;
    TraversalStats small, big;
    small.node_visits = 10;
    big.node_visits = 100;
    EXPECT_LT(m.cost(small), m.cost(big));
}

} // namespace
} // namespace rt
} // namespace juno
