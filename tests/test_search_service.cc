/**
 * @file
 * Tests of the serving layer: request queue dual trigger, service
 * result parity with direct batched search, admission control,
 * drain-on-stop (no lost or double-completed requests) and the
 * ServiceStats SLO accounting.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "baseline/flat_index.h"
#include "baseline/ivfflat_index.h"
#include "common/logging.h"
#include "dataset/synthetic.h"
#include "serve/request_queue.h"
#include "serve/search_service.h"
#include "serve/service_stats.h"

namespace juno {
namespace {

using namespace std::chrono_literals;

Dataset
smallDataset()
{
    SyntheticSpec spec;
    spec.kind = DatasetKind::kDeepLike;
    spec.num_points = 500;
    spec.num_queries = 40;
    spec.dim = 8;
    spec.seed = 777;
    return makeDataset(spec);
}

/** Flat index whose every chunk sleeps, to back-pressure the queue. */
class SlowFlatIndex : public FlatIndex {
  public:
    SlowFlatIndex(Metric metric, FloatMatrixView points,
                  std::chrono::microseconds delay)
        : FlatIndex(metric, points), delay_(delay)
    {
    }

  protected:
    void
    searchChunk(const SearchChunk &chunk, SearchContext &ctx) override
    {
        std::this_thread::sleep_for(delay_);
        FlatIndex::searchChunk(chunk, ctx);
    }

  private:
    std::chrono::microseconds delay_;
};

// ---- BoundedMpmcQueue ----

TEST(RequestQueue, FullQueueRejects)
{
    BoundedMpmcQueue<int> queue(2);
    EXPECT_EQ(queue.tryPush(1), PushResult::kOk);
    EXPECT_EQ(queue.tryPush(2), PushResult::kOk);
    EXPECT_EQ(queue.tryPush(3), PushResult::kFull);
    EXPECT_EQ(queue.size(), 2u);
}

TEST(RequestQueue, ClosedQueueRejectsAndDrains)
{
    BoundedMpmcQueue<int> queue(8);
    queue.tryPush(1);
    queue.tryPush(2);
    queue.close();
    EXPECT_EQ(queue.tryPush(3), PushResult::kClosed);
    std::vector<int> batch;
    // Everything accepted before close() is still drained...
    EXPECT_TRUE(queue.popBatch(batch, 8, 0us));
    EXPECT_EQ(batch, (std::vector<int>{1, 2}));
    // ...then consumers get the shutdown signal.
    EXPECT_FALSE(queue.popBatch(batch, 8, 0us));
}

TEST(RequestQueue, BatchFullTriggerClosesEarly)
{
    BoundedMpmcQueue<int> queue(64);
    for (int i = 0; i < 10; ++i)
        queue.tryPush(std::move(i));
    std::vector<int> batch;
    // A full batch must not wait out the linger window.
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_TRUE(queue.popBatch(batch, 4, 500ms));
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_EQ(batch.size(), 4u);
    EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_LT(elapsed, 400ms);
}

TEST(RequestQueue, LingerTriggerDispatchesPartialBatch)
{
    BoundedMpmcQueue<int> queue(64);
    queue.tryPush(7);
    std::vector<int> batch;
    // One item, batch of 64: only the linger timeout can close it.
    EXPECT_TRUE(queue.popBatch(batch, 64, 1ms));
    EXPECT_EQ(batch, (std::vector<int>{7}));
}

TEST(RequestQueue, LingerWaitUntilTimesOutWithoutFill)
{
    BoundedMpmcQueue<int> queue(64);
    queue.tryPush(1);
    queue.tryPush(2);
    std::vector<int> batch;
    // Two items, target 8, no producers: only the wait_until timeout
    // branch can end the linger wait. The batch must dispatch with
    // exactly the backlog, after (roughly) the full linger window.
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_TRUE(queue.popBatch(batch, 8, 30ms));
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_EQ(batch, (std::vector<int>{1, 2}));
    EXPECT_GE(elapsed, 25ms); // timed out, did not return early
    EXPECT_LT(elapsed, 500ms);
}

TEST(RequestQueue, DrainUnderChurnLosesNothing)
{
    BoundedMpmcQueue<int> queue(32);
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 500;
    std::atomic<long long> popped_sum{0};
    std::atomic<int> popped_count{0};

    std::vector<std::thread> consumers;
    for (int c = 0; c < 2; ++c)
        consumers.emplace_back([&] {
            std::vector<int> batch;
            while (queue.popBatch(batch, 7, 100us)) {
                for (const int v : batch)
                    popped_sum.fetch_add(v);
                popped_count.fetch_add(static_cast<int>(batch.size()));
            }
        });

    long long pushed_sum = 0;
    int pushed_count = 0;
    std::mutex push_mutex;
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p)
        producers.emplace_back([&, p] {
            long long my_sum = 0;
            int my_count = 0;
            for (int i = 0; i < kPerProducer; ++i) {
                const int v = p * kPerProducer + i;
                // Spin on kFull: churn means the queue oscillates
                // between full and drained the whole run.
                while (queue.tryPush(int(v)) == PushResult::kFull)
                    std::this_thread::yield();
                my_sum += v;
                ++my_count;
            }
            std::lock_guard<std::mutex> lock(push_mutex);
            pushed_sum += my_sum;
            pushed_count += my_count;
        });
    for (auto &t : producers)
        t.join();
    queue.close();
    for (auto &t : consumers)
        t.join();

    // Conservation through churn: every accepted item popped exactly
    // once (count and checksum both match).
    EXPECT_EQ(popped_count.load(), pushed_count);
    EXPECT_EQ(popped_sum.load(), pushed_sum);
    EXPECT_EQ(queue.size(), 0u);
}

TEST(RequestQueue, ConsumerWakesOnLatePush)
{
    BoundedMpmcQueue<int> queue(8);
    std::vector<int> batch;
    std::thread producer([&] {
        std::this_thread::sleep_for(10ms);
        queue.tryPush(42);
    });
    EXPECT_TRUE(queue.popBatch(batch, 4, 0us));
    producer.join();
    EXPECT_EQ(batch, (std::vector<int>{42}));
}

// ---- ServiceStats ----

TEST(ServiceStats, CountersAndQuantiles)
{
    ServiceStats stats;
    stats.recordAccepted();
    stats.recordAccepted();
    stats.recordRejectedFull();
    stats.recordRejectedStopped();
    stats.recordCompletion(10.0, 1.0, 100.0, 111.0);
    stats.recordCompletion(20.0, 2.0, 200.0, 222.0);
    stats.recordBatch(2);

    const auto snap = stats.snapshot();
    EXPECT_EQ(snap.submitted, 2u);
    EXPECT_EQ(snap.completed, 2u);
    EXPECT_EQ(snap.rejected_full, 1u);
    EXPECT_EQ(snap.rejected_stopped, 1u);
    EXPECT_EQ(snap.batches, 1u);
    EXPECT_DOUBLE_EQ(snap.mean_batch, 2.0);
    EXPECT_EQ(snap.total_us.count, 2u);
    EXPECT_DOUBLE_EQ(snap.queue_us.p50, 15.0);
    EXPECT_DOUBLE_EQ(snap.total_us.max, 222.0);
    EXPECT_DOUBLE_EQ(snap.search_us.mean, 150.0);
}

TEST(ServiceStats, MergesRecordsFromManyThreads)
{
    ServiceStats stats;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 50;
    std::vector<std::thread> recorders;
    for (int t = 0; t < kThreads; ++t)
        recorders.emplace_back([&] {
            for (int i = 0; i < kPerThread; ++i)
                stats.recordCompletion(1.0, 1.0, 1.0, 3.0);
        });
    for (auto &r : recorders)
        r.join();
    const auto snap = stats.snapshot();
    // No record may be lost to sharding.
    EXPECT_EQ(snap.completed,
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(snap.total_us.count,
              static_cast<std::size_t>(kThreads * kPerThread));
    EXPECT_DOUBLE_EQ(snap.total_us.p99, 3.0);
}

// ---- SearchService ----

TEST(SearchService, ResultsMatchDirectBatchSearch)
{
    const auto ds = smallDataset();
    FlatIndex index(ds.metric, ds.base.view());
    const idx_t k = 10;
    const auto direct = index.search(ds.queries.view(), k);

    ServiceConfig config;
    config.max_batch = 8;
    config.linger = 200us;
    SearchService service(index, config);
    service.start();

    std::vector<std::future<ResultList>> futures;
    for (idx_t q = 0; q < ds.queries.rows(); ++q) {
        auto f = service.submit(ds.queries.view().row(q), k);
        ASSERT_TRUE(f.valid()) << "query " << q;
        futures.push_back(std::move(f));
    }
    for (idx_t q = 0; q < ds.queries.rows(); ++q)
        EXPECT_EQ(futures[static_cast<std::size_t>(q)].get(),
                  direct[static_cast<std::size_t>(q)])
            << "query " << q;
    service.stop();

    const auto snap = service.snapshot();
    EXPECT_EQ(snap.submitted,
              static_cast<std::uint64_t>(ds.queries.rows()));
    EXPECT_EQ(snap.completed, snap.submitted);
    EXPECT_GE(snap.batches, 1u);
    EXPECT_EQ(snap.total_us.count,
              static_cast<std::size_t>(ds.queries.rows()));
}

TEST(SearchService, ConcurrentClientsGetCorrectResults)
{
    const auto ds = smallDataset();
    FlatIndex index(ds.metric, ds.base.view());
    const idx_t k = 5;
    const auto direct = index.search(ds.queries.view(), k);

    ServiceConfig config;
    config.max_batch = 16;
    config.linger = 100us;
    SearchService service(index, config);
    service.start();

    constexpr int kClients = 4;
    constexpr int kRounds = 5;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c)
        clients.emplace_back([&] {
            for (int round = 0; round < kRounds; ++round)
                for (idx_t q = 0; q < ds.queries.rows(); ++q) {
                    auto f =
                        service.submit(ds.queries.view().row(q), k);
                    try {
                        if (f.get() != direct[static_cast<std::size_t>(q)])
                            mismatches.fetch_add(1);
                    } catch (const RejectedError &) {
                        mismatches.fetch_add(1);
                    }
                }
        });
    for (auto &t : clients)
        t.join();
    EXPECT_EQ(mismatches.load(), 0);
    service.stop();
    EXPECT_EQ(service.stats().completed(),
              static_cast<std::uint64_t>(kClients * kRounds) *
                  static_cast<std::uint64_t>(ds.queries.rows()));
}

TEST(SearchService, MixedKPerRequestTruncatesCorrectly)
{
    const auto ds = smallDataset();
    FlatIndex index(ds.metric, ds.base.view());
    const auto direct = index.search(ds.queries.view(), 12);

    ServiceConfig config;
    config.max_batch = 64;
    config.linger = 2ms; // queries land in one mixed-k batch
    SearchService service(index, config);
    service.start();

    std::vector<std::future<ResultList>> futures;
    std::vector<idx_t> ks;
    for (idx_t q = 0; q < ds.queries.rows(); ++q) {
        const idx_t k = 1 + (q % 12);
        ks.push_back(k);
        futures.push_back(service.submit(ds.queries.view().row(q), k));
    }
    for (idx_t q = 0; q < ds.queries.rows(); ++q) {
        const auto got = futures[static_cast<std::size_t>(q)].get();
        const auto &full = direct[static_cast<std::size_t>(q)];
        const auto k = ks[static_cast<std::size_t>(q)];
        ASSERT_EQ(static_cast<idx_t>(got.size()), k) << "query " << q;
        for (idx_t i = 0; i < k; ++i)
            EXPECT_EQ(got[static_cast<std::size_t>(i)],
                      full[static_cast<std::size_t>(i)])
                << "query " << q << " rank " << i;
    }
}

TEST(SearchService, KZeroYieldsEmptyListAndHugeKClamps)
{
    const auto ds = smallDataset();
    FlatIndex index(ds.metric, ds.base.view());
    SearchService service(index, {});
    service.start();
    auto empty = service.submit(ds.queries.view().row(0), 0);
    auto all = service.submit(ds.queries.view().row(0),
                              index.size() + 50);
    EXPECT_TRUE(empty.get().empty());
    EXPECT_EQ(static_cast<idx_t>(all.get().size()), index.size());
}

TEST(SearchService, AdmissionControlRejectsWhenFull)
{
    const auto ds = smallDataset();
    // ~5 ms per dispatched chunk: the dispatcher cannot keep up with
    // a burst, so the 2-deep queue must shed.
    SlowFlatIndex index(ds.metric, ds.base.view(), 5ms);
    ServiceConfig config;
    config.max_batch = 1; // drain one at a time
    config.linger = 0us;
    config.queue_capacity = 2;
    SearchService service(index, config);
    service.start();

    constexpr int kBurst = 30;
    std::vector<std::future<ResultList>> accepted;
    int rejected = 0;
    for (int i = 0; i < kBurst; ++i) {
        RejectReason reason = RejectReason::kNone;
        auto f = service.submit(ds.queries.view().row(0), 3, &reason);
        ASSERT_TRUE(f.valid()); // rejection returns a throwing future,
                                // never an invalid one
        if (reason == RejectReason::kNone) {
            accepted.push_back(std::move(f));
        } else {
            EXPECT_EQ(reason, RejectReason::kQueueFull);
            ++rejected;
            try {
                f.get();
                ADD_FAILURE() << "rejected future must throw";
            } catch (const RejectedError &e) {
                EXPECT_EQ(e.reason(), RejectReason::kQueueFull);
            }
        }
    }
    EXPECT_GT(rejected, 0); // the burst must overflow a 2-deep queue
    for (auto &f : accepted)
        EXPECT_EQ(f.get().size(), 3u); // accepted work still completes
    service.stop();

    const auto snap = service.snapshot();
    EXPECT_EQ(snap.submitted, static_cast<std::uint64_t>(
                                  accepted.size()));
    EXPECT_EQ(snap.rejected_full,
              static_cast<std::uint64_t>(rejected));
    EXPECT_EQ(snap.completed, snap.submitted);
    EXPECT_EQ(snap.submitted + snap.rejected_full,
              static_cast<std::uint64_t>(kBurst));
}

TEST(SearchService, StopDrainsEveryAcceptedRequest)
{
    const auto ds = smallDataset();
    SlowFlatIndex index(ds.metric, ds.base.view(), 1ms);
    ServiceConfig config;
    config.max_batch = 4;
    config.linger = 50us;
    config.queue_capacity = 256;
    SearchService service(index, config);
    service.start();

    std::vector<std::future<ResultList>> futures;
    for (int i = 0; i < 64; ++i) {
        auto f = service.submit(
            ds.queries.view().row(i % ds.queries.rows()), 5);
        ASSERT_TRUE(f.valid());
        futures.push_back(std::move(f));
    }
    // Stop immediately: the backlog must be completed, not dropped.
    service.stop();
    for (auto &f : futures) {
        ASSERT_EQ(f.wait_for(0s), std::future_status::ready);
        EXPECT_EQ(f.get().size(), 5u); // get() would throw on a lost
                                       // (broken) promise
    }
    const auto snap = service.snapshot();
    EXPECT_EQ(snap.submitted, 64u);
    EXPECT_EQ(snap.completed, 64u); // each exactly once
}

/** Flat index whose search always throws (engine-failure path). */
class FailingIndex : public FlatIndex {
  public:
    using FlatIndex::FlatIndex;

  protected:
    void
    searchChunk(const SearchChunk &, SearchContext &) override
    {
        fatal("injected engine failure");
    }
};

TEST(SearchService, EngineFailurePropagatesAndIsAccounted)
{
    const auto ds = smallDataset();
    FailingIndex index(ds.metric, ds.base.view());
    ServiceConfig config;
    config.max_batch = 8;
    SearchService service(index, config);
    service.start();
    std::vector<std::future<ResultList>> futures;
    for (int i = 0; i < 12; ++i)
        futures.push_back(service.submit(ds.queries.view().row(0), 3));
    for (auto &f : futures) {
        ASSERT_TRUE(f.valid());
        EXPECT_THROW(f.get(), ConfigError); // the engine's error, not
                                            // broken_promise
    }
    service.stop();
    const auto snap = service.snapshot();
    // Conservation still closes: every accepted request settled, as a
    // failure.
    EXPECT_EQ(snap.submitted, 12u);
    EXPECT_EQ(snap.failed, 12u);
    EXPECT_EQ(snap.completed, 0u);
    EXPECT_EQ(snap.completed + snap.failed, snap.submitted);
}

TEST(SearchService, SubmitAfterStopIsRejected)
{
    const auto ds = smallDataset();
    FlatIndex index(ds.metric, ds.base.view());
    SearchService service(index, {});
    service.start();
    service.stop();
    RejectReason reason = RejectReason::kNone;
    auto f = service.submit(ds.queries.view().row(0), 5, &reason);
    ASSERT_TRUE(f.valid());
    EXPECT_EQ(reason, RejectReason::kStopped);
    try {
        f.get();
        ADD_FAILURE() << "post-stop future must throw";
    } catch (const RejectedError &e) {
        EXPECT_EQ(e.reason(), RejectReason::kStopped);
    }
    EXPECT_EQ(service.stats().rejectedStopped(), 1u);
    service.stop(); // idempotent
}

TEST(SearchService, ConcurrentStopIsSafe)
{
    const auto ds = smallDataset();
    SlowFlatIndex index(ds.metric, ds.base.view(), 500us);
    ServiceConfig config;
    config.max_batch = 4;
    SearchService service(index, config);
    service.start();
    std::vector<std::future<ResultList>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(
            service.submit(ds.queries.view().row(0), 3));
    std::vector<std::thread> stoppers;
    for (int i = 0; i < 3; ++i)
        stoppers.emplace_back([&] { service.stop(); });
    for (auto &t : stoppers)
        t.join();
    // Every stop() returned => drain finished; all futures ready.
    for (auto &f : futures) {
        if (f.valid()) {
            EXPECT_EQ(f.wait_for(0s), std::future_status::ready);
        }
    }
}

TEST(SearchService, NoBatchingConfigStillServesEverything)
{
    // max_batch = 1 is the bench_serve baseline; it must be correct,
    // just slower.
    const auto ds = smallDataset();
    FlatIndex index(ds.metric, ds.base.view());
    const auto direct = index.search(ds.queries.view(), 7);
    ServiceConfig config;
    config.max_batch = 1;
    config.linger = 0us;
    SearchService service(index, config);
    service.start();
    std::vector<std::future<ResultList>> futures;
    for (idx_t q = 0; q < ds.queries.rows(); ++q)
        futures.push_back(service.submit(ds.queries.view().row(q), 7));
    for (idx_t q = 0; q < ds.queries.rows(); ++q)
        EXPECT_EQ(futures[static_cast<std::size_t>(q)].get(),
                  direct[static_cast<std::size_t>(q)]);
    service.stop();
    const auto snap = service.snapshot();
    EXPECT_DOUBLE_EQ(snap.mean_batch, 1.0);
    EXPECT_EQ(snap.batches,
              static_cast<std::uint64_t>(ds.queries.rows()));
}

TEST(SearchService, RejectsBadConfigAndDoubleStart)
{
    const auto ds = smallDataset();
    FlatIndex index(ds.metric, ds.base.view());
    ServiceConfig bad;
    bad.max_batch = 0;
    EXPECT_THROW({ SearchService s(index, bad); }, ConfigError);
    ServiceConfig bad_q;
    bad_q.queue_capacity = 0;
    EXPECT_THROW({ SearchService s(index, bad_q); }, ConfigError);

    SearchService service(index, {});
    service.start();
    EXPECT_THROW(service.start(), ConfigError);
    service.stop();
    EXPECT_THROW(service.start(), ConfigError);

    std::vector<float> wrong(static_cast<std::size_t>(index.dim()) + 1,
                             0.0f);
    SearchService service2(index, {});
    service2.start();
    EXPECT_THROW(service2.submit(wrong, 3), ConfigError);
}

// TSan regression stress: submitters, a snapshot() poller and racing
// stoppers all hit the service at once. snapshot() reads base_usage_,
// which start() writes — the read must go through lifecycle_mutex_ (a
// plain read here was this layer's one real pre-annotation race).
// Conservation under fire: every valid future settles exactly once
// and submitted == completed + failed after the drain.
TEST(SearchService, ConcurrentSubmitStopSnapshot)
{
    const auto ds = smallDataset();
    SlowFlatIndex index(ds.metric, ds.base.view(), 200us);
    ServiceConfig config;
    config.max_batch = 4;
    config.linger = 50us;
    config.queue_capacity = 64; // small: exercise rejected_full too
    SearchService service(index, config);
    service.start();

    constexpr int kSubmitters = 3;
    constexpr int kPerThread = 60;
    std::mutex futures_mutex;
    std::vector<std::future<ResultList>> futures;
    std::atomic<bool> go{false};
    std::atomic<bool> done{false};

    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t)
        submitters.emplace_back([&, t] {
            while (!go.load())
                std::this_thread::yield();
            for (int i = 0; i < kPerThread; ++i) {
                RejectReason reason = RejectReason::kNone;
                auto f = service.submit(
                    ds.queries.view().row((t + i) % ds.queries.rows()),
                    3, &reason);
                if (reason == RejectReason::kNone) {
                    std::lock_guard<std::mutex> lock(futures_mutex);
                    futures.push_back(std::move(f));
                }
            }
        });
    std::thread poller([&] {
        while (!done.load()) {
            const auto snap = service.snapshot();
            // Mid-flight the counters may trail each other, but
            // settled never exceeds accepted.
            EXPECT_LE(snap.completed + snap.failed, snap.submitted);
            std::this_thread::yield();
        }
    });
    std::vector<std::thread> stoppers;
    for (int t = 0; t < 2; ++t)
        stoppers.emplace_back([&] {
            while (!go.load())
                std::this_thread::yield();
            // Let some traffic through, then slam the door mid-burst.
            std::this_thread::sleep_for(2ms);
            service.stop();
        });

    go.store(true);
    for (auto &t : submitters)
        t.join();
    for (auto &t : stoppers)
        t.join();
    service.stop();
    done.store(true);
    poller.join();

    // Drain guarantee: every accepted request settled exactly once.
    std::size_t settled = 0;
    for (auto &f : futures) {
        ASSERT_EQ(f.wait_for(0s), std::future_status::ready);
        try {
            f.get();
        } catch (const std::exception &) {
            // engine failures still count as settled
        }
        ++settled;
    }
    const auto snap = service.snapshot();
    EXPECT_EQ(snap.submitted, settled);
    EXPECT_EQ(snap.completed + snap.failed, snap.submitted);
    // Whatever was shed was shed at the door, with a counted reason.
    const std::uint64_t total =
        static_cast<std::uint64_t>(kSubmitters) * kPerThread;
    EXPECT_EQ(snap.submitted + snap.rejected_full + snap.rejected_stopped,
              total);
}

// ---- Deadline semantics ----

TEST(SearchServiceDeadline, ExpiredAtSubmitIsRejected)
{
    const auto ds = smallDataset();
    FlatIndex index(ds.metric, ds.base.view());
    SearchService service(index, {});
    service.start();

    RejectReason reason = RejectReason::kNone;
    auto f = service.submit(ds.queries.view().row(0), 5,
                            SearchService::Clock::now() - 1ms, &reason);
    ASSERT_TRUE(f.valid());
    EXPECT_EQ(reason, RejectReason::kExpired);
    try {
        f.get();
        ADD_FAILURE() << "expired-at-submit future must throw";
    } catch (const RejectedError &e) {
        EXPECT_EQ(e.reason(), RejectReason::kExpired);
    }
    service.stop();

    const auto snap = service.snapshot();
    EXPECT_EQ(snap.rejected_expired, 1u);
    EXPECT_EQ(snap.submitted, 0u); // shed at the door, never accepted
}

TEST(SearchServiceDeadline, ExpiredInQueueIsShedBeforeSearch)
{
    const auto ds = smallDataset();
    // 20 ms per dispatched batch: anything behind the first request
    // with a ~1 ms deadline is guaranteed stale at dequeue.
    SlowFlatIndex index(ds.metric, ds.base.view(), 20ms);
    ServiceConfig config;
    config.max_batch = 1;
    config.linger = 0us;
    config.queue_capacity = 64;
    SearchService service(index, config);
    service.start();

    // Occupy the dispatcher, then enqueue doomed work behind it.
    auto head = service.submit(ds.queries.view().row(0), 3);
    constexpr int kDoomed = 4;
    std::vector<std::future<ResultList>> doomed;
    for (int i = 0; i < kDoomed; ++i)
        doomed.push_back(
            service.submit(ds.queries.view().row(0), 3,
                           SearchService::Clock::now() + 1ms));
    EXPECT_EQ(head.get().size(), 3u);
    int expired = 0;
    for (auto &f : doomed) {
        try {
            // A shed request may still complete if it won the race to
            // the dispatcher; what it may never do is get lost.
            f.get();
        } catch (const RejectedError &e) {
            EXPECT_EQ(e.reason(), RejectReason::kExpired);
            ++expired;
        }
    }
    service.stop();

    const auto snap = service.snapshot();
    EXPECT_EQ(snap.expired, static_cast<std::uint64_t>(expired));
    EXPECT_GT(expired, 0); // the 20 ms head start dooms the backlog
    // Conservation with the expired leg.
    EXPECT_EQ(snap.submitted,
              snap.completed + snap.failed + snap.expired);
}

TEST(SearchServiceDeadline, MidScanCutoffIsDeterministicFirstProbe)
{
    SyntheticSpec spec;
    spec.kind = DatasetKind::kDeepLike;
    spec.num_points = 2000;
    spec.num_queries = 8;
    spec.dim = 16;
    spec.seed = 42;
    const auto ds = makeDataset(spec);

    IvfFlatIndex::Params params;
    params.clusters = 32;
    params.nprobs = 8;
    IvfFlatIndex index(ds.metric, ds.base.view(), params);

    // A deadline already in the past when the scan starts cuts every
    // query off after its FIRST probe list (the check runs between
    // lists, never before the first): exactly nprobe=1 results, all
    // flagged degraded — partial but valid and deterministic.
    std::vector<std::uint8_t> degraded;
    SearchRequest request(ds.queries.view(), 10);
    request.options.deadline = SearchService::Clock::now() - 1s;
    request.options.degraded = &degraded;
    const auto cut = index.search(request);

    index.setNprobs(1);
    const auto one_probe = index.search(ds.queries.view(), 10);

    ASSERT_EQ(degraded.size(),
              static_cast<std::size_t>(ds.queries.rows()));
    for (idx_t q = 0; q < ds.queries.rows(); ++q) {
        EXPECT_EQ(cut[static_cast<std::size_t>(q)],
                  one_probe[static_cast<std::size_t>(q)])
            << "query " << q;
        EXPECT_FALSE(cut[static_cast<std::size_t>(q)].empty());
        EXPECT_EQ(degraded[static_cast<std::size_t>(q)], 1)
            << "query " << q;
    }
}

TEST(SearchServiceDeadline, DefaultDeadlineZeroMeansNone)
{
    const auto ds = smallDataset();
    FlatIndex index(ds.metric, ds.base.view());
    const auto direct = index.search(ds.queries.view(), 5);
    ServiceConfig config;
    config.default_deadline_ms = 0.0; // explicit: no deadline
    SearchService service(index, config);
    service.start();
    std::vector<std::future<ResultList>> futures;
    for (idx_t q = 0; q < ds.queries.rows(); ++q)
        futures.push_back(service.submit(ds.queries.view().row(q), 5));
    for (idx_t q = 0; q < ds.queries.rows(); ++q) {
        auto got = futures[static_cast<std::size_t>(q)].get();
        EXPECT_EQ(got, direct[static_cast<std::size_t>(q)]);
        EXPECT_FALSE(got.degraded); // parity: nothing engaged
    }
    service.stop();
    const auto snap = service.snapshot();
    EXPECT_EQ(snap.expired, 0u);
    EXPECT_EQ(snap.rejected_expired, 0u);
    EXPECT_EQ(snap.degraded, 0u);
}

// TSan stress: deadlined submits (a mix of generous, instantly-stale
// and already-expired) race stop(). Conservation must close with the
// expired leg and every future must settle exactly once.
TEST(SearchServiceDeadline, RacingDeadlinesAndStopConserveRequests)
{
    const auto ds = smallDataset();
    SlowFlatIndex index(ds.metric, ds.base.view(), 200us);
    ServiceConfig config;
    config.max_batch = 4;
    config.linger = 50us;
    config.queue_capacity = 64;
    SearchService service(index, config);
    service.start();

    constexpr int kSubmitters = 3;
    constexpr int kPerThread = 60;
    std::mutex futures_mutex;
    std::vector<std::future<ResultList>> futures;
    std::atomic<bool> go{false};

    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t)
        submitters.emplace_back([&, t] {
            while (!go.load())
                std::this_thread::yield();
            for (int i = 0; i < kPerThread; ++i) {
                const auto now = SearchService::Clock::now();
                const auto deadline =
                    i % 3 == 0   ? now - 1ms       // expired at submit
                    : i % 3 == 1 ? now + 300us     // stale in queue
                                 : now + 1s;       // comfortably live
                RejectReason reason = RejectReason::kNone;
                auto f = service.submit(
                    ds.queries.view().row((t + i) % ds.queries.rows()),
                    3, deadline, &reason);
                if (reason == RejectReason::kNone) {
                    std::lock_guard<std::mutex> lock(futures_mutex);
                    futures.push_back(std::move(f));
                }
            }
        });
    std::thread stopper([&] {
        while (!go.load())
            std::this_thread::yield();
        std::this_thread::sleep_for(2ms);
        service.stop();
    });

    go.store(true);
    for (auto &t : submitters)
        t.join();
    stopper.join();
    service.stop();

    std::size_t settled = 0;
    for (auto &f : futures) {
        ASSERT_EQ(f.wait_for(0s), std::future_status::ready);
        try {
            f.get();
        } catch (const std::exception &) {
            // expired / engine-failed still count as settled
        }
        ++settled;
    }
    const auto snap = service.snapshot();
    EXPECT_EQ(snap.submitted, settled);
    EXPECT_EQ(snap.submitted,
              snap.completed + snap.failed + snap.expired);
}

} // namespace
} // namespace juno
