/** @file Tests for the JUNO scene construction and coordinate mapping. */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/distance.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/scene_builder.h"
#include "rtcore/device.h"

namespace juno {
namespace {

/** Trains a tiny PQ + policy pair over random dim-8 vectors. */
struct SceneFixture {
    FloatMatrix vectors{FloatMatrix(800, 8)};
    ProductQuantizer pq;
    DensityMap density;
    ThresholdPolicy policy;
    JunoScene scene;

    explicit SceneFixture(Metric metric)
    {
        Rng rng(81);
        for (idx_t i = 0; i < vectors.rows(); ++i)
            for (idx_t j = 0; j < vectors.cols(); ++j)
                vectors.at(i, j) = rng.uniform(-2.0f, 2.0f);

        PQParams pq_params;
        pq_params.num_subspaces = 4;
        pq_params.entries = 32;
        pq.train(vectors.view(), pq_params);

        density.build(vectors.view(), 4, 20);
        ThresholdPolicy::Params tp;
        tp.train_samples = 60;
        tp.ref_samples = 400;
        tp.contain_topk = 30;
        policy.train(metric, vectors.view(), 4, density, tp);

        scene.build(metric, pq, policy);
    }
};

TEST(JunoScene, PlacesOneSpherePerEntry)
{
    SceneFixture fx(Metric::kL2);
    EXPECT_TRUE(fx.scene.built());
    EXPECT_EQ(fx.scene.scene().sphereCount(), 4u * 32u);
}

TEST(JunoScene, SpheresSitAtSubspacePlanes)
{
    SceneFixture fx(Metric::kL2);
    for (const auto &sphere : fx.scene.scene().spheres()) {
        int s;
        entry_t e;
        JunoScene::unpackId(sphere.user_id, s, e);
        EXPECT_FLOAT_EQ(sphere.center.z,
                        JunoScene::kZSpacing * static_cast<float>(s) + 1.0f);
        EXPECT_LT(e, 32);
    }
}

TEST(JunoScene, L2SpheresShareConstantRadius)
{
    SceneFixture fx(Metric::kL2);
    for (const auto &sphere : fx.scene.scene().spheres())
        EXPECT_FLOAT_EQ(sphere.radius, fx.scene.radius());
}

TEST(JunoScene, IpRadiiAreInflatedByEntryNorm)
{
    SceneFixture fx(Metric::kInnerProduct);
    const float r2 = fx.scene.radius() * fx.scene.radius();
    for (const auto &sphere : fx.scene.scene().spheres()) {
        const float norm2 = sphere.center.x * sphere.center.x +
                            sphere.center.y * sphere.center.y;
        EXPECT_NEAR(sphere.radius, std::sqrt(r2 + norm2), 1e-5f);
    }
}

TEST(JunoScene, PackUnpackRoundTrip)
{
    for (int s : {0, 1, 17, 99})
        for (entry_t e : {entry_t(0), entry_t(7), entry_t(255)}) {
            int s2;
            entry_t e2;
            JunoScene::unpackId(JunoScene::packId(s, e), s2, e2);
            EXPECT_EQ(s2, s);
            EXPECT_EQ(e2, e);
        }
}

TEST(JunoScene, MakeRayGatesTmaxByThreshold)
{
    SceneFixture fx(Metric::kL2);
    rt::Ray tight, loose;
    ASSERT_TRUE(fx.scene.makeRay(0, 0.1f, 0.1f, 0.2, tight));
    ASSERT_TRUE(fx.scene.makeRay(0, 0.1f, 0.1f, 1.0, loose));
    EXPECT_LT(tight.tmax, loose.tmax);
    EXPECT_LE(loose.tmax, 1.0f);
}

TEST(JunoScene, MakeRayRejectsEmptyGate)
{
    SceneFixture fx(Metric::kL2);
    rt::Ray ray;
    EXPECT_FALSE(fx.scene.makeRay(0, 0.0f, 0.0f, 0.0, ray));
    EXPECT_FALSE(fx.scene.makeRay(0, 0.0f, 0.0f, -1.0, ray));
}

TEST(JunoScene, ThitGateEquivalentToDistanceCheckL2)
{
    // Property: an entry is hit by a gated ray iff its true subspace
    // distance is within the threshold. This is the core correctness
    // claim of the RT mapping.
    SceneFixture fx(Metric::kL2);
    Rng rng(91);
    rt::RtDevice device;
    for (int trial = 0; trial < 40; ++trial) {
        const int s = static_cast<int>(rng.below(4));
        const float qx = rng.uniform(-2.0f, 2.0f);
        const float qy = rng.uniform(-2.0f, 2.0f);
        const double thr =
            fx.policy.threshold(s, qx, qy) * rng.uniform(0.3f, 1.0f);
        rt::Ray ray;
        if (!fx.scene.makeRay(s, qx, qy, thr, ray))
            continue;
        std::set<entry_t> hit_entries;
        device.launch(fx.scene.scene(), {ray},
                      [&](const rt::Ray &, const rt::Hit &hit) {
                          int hs;
                          entry_t he;
                          JunoScene::unpackId(hit.user_id, hs, he);
                          if (hs == s)
                              hit_entries.insert(he);
                          return true;
                      });
        for (entry_t e = 0; e < 32; ++e) {
            const float *ec = fx.pq.entry(s, e);
            const double dx = ec[0] - qx, dy = ec[1] - qy;
            const double dist = std::sqrt(dx * dx + dy * dy);
            const bool inside = dist <= thr * (1.0 - 1e-6);
            const bool outside = dist >= thr * (1.0 + 1e-6);
            if (inside) {
                EXPECT_TRUE(hit_entries.count(e))
                    << "entry " << e << " at dist " << dist
                    << " should be within thr " << thr;
            } else if (outside) {
                EXPECT_FALSE(hit_entries.count(e))
                    << "entry " << e << " at dist " << dist
                    << " should be outside thr " << thr;
            }
        }
    }
}

TEST(JunoScene, LutValueRecoversL2)
{
    SceneFixture fx(Metric::kL2);
    rt::RtDevice device;
    const int s = 1;
    const float qx = 0.3f, qy = -0.6f;
    const double thr = fx.policy.maxThreshold(s);
    rt::Ray ray;
    ASSERT_TRUE(fx.scene.makeRay(s, qx, qy, thr, ray));
    int checked = 0;
    device.launch(fx.scene.scene(), {ray},
                  [&](const rt::Ray &, const rt::Hit &hit) {
                      int hs;
                      entry_t he;
                      JunoScene::unpackId(hit.user_id, hs, he);
                      if (hs != s)
                          return true;
                      const float *ec = fx.pq.entry(s, he);
                      const float dx = ec[0] - qx, dy = ec[1] - qy;
                      EXPECT_NEAR(fx.scene.lutValueL2(s, hit.thit),
                                  dx * dx + dy * dy, 2e-3f);
                      ++checked;
                      return true;
                  });
    EXPECT_GT(checked, 0);
}

TEST(JunoScene, LutValueRecoversIp)
{
    SceneFixture fx(Metric::kInnerProduct);
    rt::RtDevice device;
    const int s = 2;
    const float qx = 0.8f, qy = 0.4f;
    // A permissive floor so several entries hit.
    const double floor = fx.policy.minThreshold(s) - 5.0;
    rt::Ray ray;
    ASSERT_TRUE(fx.scene.makeRay(s, qx, qy, floor, ray));
    const float k = fx.scene.coordScale(s);
    const float qn2 = (qx * k) * (qx * k) + (qy * k) * (qy * k);
    int checked = 0;
    device.launch(fx.scene.scene(), {ray},
                  [&](const rt::Ray &, const rt::Hit &hit) {
                      int hs;
                      entry_t he;
                      JunoScene::unpackId(hit.user_id, hs, he);
                      if (hs != s)
                          return true;
                      const float *ec = fx.pq.entry(s, he);
                      const float ip = ec[0] * qx + ec[1] * qy;
                      EXPECT_NEAR(fx.scene.lutValueIp(s, qn2, hit.thit), ip,
                                  5e-3f);
                      ++checked;
                      return true;
                  });
    EXPECT_GT(checked, 0);
}

TEST(JunoScene, TmaxMonotoneInThresholdNeverAddsHitsWhenShrunk)
{
    SceneFixture fx(Metric::kL2);
    rt::RtDevice device;
    const int s = 0;
    const float qx = 0.2f, qy = 0.1f;
    auto hits_for = [&](double thr) {
        rt::Ray ray;
        if (!fx.scene.makeRay(s, qx, qy, thr, ray))
            return std::set<entry_t>{};
        std::set<entry_t> out;
        device.launch(fx.scene.scene(), {ray},
                      [&](const rt::Ray &, const rt::Hit &hit) {
                          int hs;
                          entry_t he;
                          JunoScene::unpackId(hit.user_id, hs, he);
                          if (hs == s)
                              out.insert(he);
                          return true;
                      });
        return out;
    };
    const double full = fx.policy.maxThreshold(s);
    auto prev = hits_for(full);
    for (double scale : {0.75, 0.5, 0.25, 0.1}) {
        auto cur = hits_for(full * scale);
        for (entry_t e : cur)
            EXPECT_TRUE(prev.count(e)) << "shrinking gate added entry " << e;
        prev = std::move(cur);
    }
}

TEST(JunoScene, RequiresTwoDimensionalSubspaces)
{
    Rng rng(83);
    FloatMatrix vectors(200, 12);
    for (idx_t i = 0; i < 200; ++i)
        for (idx_t j = 0; j < 12; ++j)
            vectors.at(i, j) = rng.uniform(-1.0f, 1.0f);
    ProductQuantizer pq;
    PQParams params;
    params.num_subspaces = 3; // subDim = 4: invalid for the RT mapping
    params.entries = 8;
    pq.train(vectors.view(), params);

    DensityMap density;
    density.build(vectors.view(), 6, 10);
    ThresholdPolicy policy;
    ThresholdPolicy::Params tp;
    tp.train_samples = 20;
    tp.ref_samples = 100;
    tp.contain_topk = 10;
    policy.train(Metric::kL2, vectors.view(), 6, density, tp);

    JunoScene scene;
    EXPECT_THROW(scene.build(Metric::kL2, pq, policy), ConfigError);
}

} // namespace
} // namespace juno
