/** @file Tests for the Flat and IVF-Flat baselines. */
#include <gtest/gtest.h>

#include "baseline/flat_index.h"
#include "baseline/ivfflat_index.h"
#include "common/logging.h"
#include "dataset/ground_truth.h"
#include "dataset/recall.h"
#include "dataset/synthetic.h"

namespace juno {
namespace {

Dataset
makeSmall(Metric metric = Metric::kL2)
{
    SyntheticSpec spec;
    spec.kind = metric == Metric::kL2 ? DatasetKind::kDeepLike
                                      : DatasetKind::kTtiLike;
    spec.num_points = 600;
    spec.num_queries = 15;
    spec.dim = 16;
    spec.components = 12;
    spec.seed = 33;
    return makeDataset(spec);
}

TEST(FlatIndex, MatchesGroundTruthExactly)
{
    const auto ds = makeSmall();
    FlatIndex index(Metric::kL2, ds.base.view());
    const auto results = index.search(ds.queries.view(), 10);
    const auto gt = computeGroundTruth(Metric::kL2, ds.base.view(),
                                       ds.queries.view(), 10);
    for (std::size_t q = 0; q < results.size(); ++q)
        EXPECT_EQ(results[q], gt.neighbors[q]);
}

TEST(FlatIndex, IpMatchesGroundTruth)
{
    const auto ds = makeSmall(Metric::kInnerProduct);
    FlatIndex index(Metric::kInnerProduct, ds.base.view());
    const auto results = index.search(ds.queries.view(), 5);
    const auto gt = computeGroundTruth(Metric::kInnerProduct,
                                       ds.base.view(), ds.queries.view(), 5);
    for (std::size_t q = 0; q < results.size(); ++q)
        EXPECT_EQ(results[q], gt.neighbors[q]);
}

TEST(FlatIndex, RecordsScanStageTime)
{
    const auto ds = makeSmall();
    FlatIndex index(Metric::kL2, ds.base.view());
    index.search(ds.queries.view(), 3);
    EXPECT_GT(index.stageTimers().seconds("scan"), 0.0);
}

TEST(FlatIndex, NameAndSize)
{
    const auto ds = makeSmall();
    FlatIndex index(Metric::kL2, ds.base.view());
    EXPECT_EQ(index.name(), "Flat-L2");
    EXPECT_EQ(index.size(), 600);
    EXPECT_EQ(index.metric(), Metric::kL2);
}

TEST(FlatIndex, RejectsBadInput)
{
    const auto ds = makeSmall();
    FlatIndex index(Metric::kL2, ds.base.view());
    EXPECT_THROW(index.search(ds.queries.view(), -1), ConfigError);
    FloatMatrix wrong(1, 7);
    EXPECT_THROW(index.search(wrong.view(), 1), ConfigError);
    // k == 0 is a degenerate request, not an error: empty lists.
    const auto empty = index.search(ds.queries.view(), 0);
    ASSERT_EQ(empty.size(),
              static_cast<std::size_t>(ds.queries.rows()));
    for (const auto &res : empty)
        EXPECT_TRUE(res.empty());
}

TEST(IvfFlat, FullProbeIsExact)
{
    const auto ds = makeSmall();
    IvfFlatIndex::Params params;
    params.clusters = 16;
    params.nprobs = 16; // probe everything -> exact search
    IvfFlatIndex index(Metric::kL2, ds.base.view(), params);
    const auto results = index.search(ds.queries.view(), 8);
    const auto gt = computeGroundTruth(Metric::kL2, ds.base.view(),
                                       ds.queries.view(), 8);
    for (std::size_t q = 0; q < results.size(); ++q)
        EXPECT_EQ(results[q], gt.neighbors[q]);
}

TEST(IvfFlat, RecallImprovesWithNprobs)
{
    const auto ds = makeSmall();
    IvfFlatIndex::Params params;
    params.clusters = 32;
    params.nprobs = 1;
    IvfFlatIndex index(Metric::kL2, ds.base.view(), params);
    const auto gt = computeGroundTruth(Metric::kL2, ds.base.view(),
                                       ds.queries.view(), 10);

    index.setNprobs(1);
    const double r1 = recall1AtK(gt, index.search(ds.queries.view(), 10));
    index.setNprobs(32);
    const double r32 = recall1AtK(gt, index.search(ds.queries.view(), 10));
    EXPECT_GE(r32, r1);
    EXPECT_DOUBLE_EQ(r32, 1.0); // probing all clusters is exact
}

TEST(IvfFlat, StageTimersIncludeFilterAndScan)
{
    const auto ds = makeSmall();
    IvfFlatIndex::Params params;
    params.clusters = 8;
    params.nprobs = 2;
    IvfFlatIndex index(Metric::kL2, ds.base.view(), params);
    index.search(ds.queries.view(), 5);
    EXPECT_GT(index.stageTimers().seconds("filter"), 0.0);
    EXPECT_GT(index.stageTimers().seconds("scan"), 0.0);
}

TEST(IvfFlat, NameEncodesClusterCount)
{
    const auto ds = makeSmall();
    IvfFlatIndex::Params params;
    params.clusters = 8;
    IvfFlatIndex index(Metric::kL2, ds.base.view(), params);
    EXPECT_EQ(index.name(), "IVF8,Flat");
}

} // namespace
} // namespace juno
