/** @file Tests for the BVH builder and traversal. */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/rng.h"
#include "rtcore/bvh.h"

namespace juno {
namespace rt {
namespace {

std::vector<Sphere>
randomSpheres(std::size_t n, std::uint64_t seed, float radius = 0.05f)
{
    Rng rng(seed);
    std::vector<Sphere> spheres(n);
    for (std::size_t i = 0; i < n; ++i) {
        spheres[i].center = {rng.uniform(-1.0f, 1.0f),
                             rng.uniform(-1.0f, 1.0f),
                             rng.uniform(0.0f, 4.0f)};
        spheres[i].radius = radius;
        spheres[i].user_id = i;
    }
    return spheres;
}

/** Collects hit prim ids of a ray via the given traversal. */
template <typename TraceFn>
std::set<std::uint32_t>
hitSet(TraceFn &&trace)
{
    std::set<std::uint32_t> out;
    trace([&](const Hit &hit) {
        out.insert(hit.prim_id);
        return true;
    });
    return out;
}

TEST(Bvh, EmptyBuildIsHarmless)
{
    Bvh bvh;
    bvh.build({});
    EXPECT_TRUE(bvh.empty());
    TraversalStats stats;
    Ray ray;
    bvh.traverse(ray, {}, stats, [](const Hit &) { return true; });
    EXPECT_EQ(stats.hits, 0u);
}

TEST(Bvh, SinglePrimitive)
{
    std::vector<Sphere> spheres(1);
    spheres[0].center = {0, 0, 1};
    spheres[0].radius = 0.5f;
    Bvh bvh;
    bvh.build(spheres);
    EXPECT_EQ(bvh.nodeCount(), 1u);

    Ray ray;
    ray.origin = {0, 0, 0};
    ray.dir = {0, 0, 1};
    TraversalStats stats;
    int hits = 0;
    bvh.traverse(ray, spheres, stats, [&](const Hit &) {
        ++hits;
        return true;
    });
    EXPECT_EQ(hits, 1);
}

/** Core property: BVH traversal finds exactly the brute-force hit set. */
class BvhEquivalence
    : public ::testing::TestWithParam<std::tuple<int, SplitPolicy>> {};

TEST_P(BvhEquivalence, MatchesLinearScan)
{
    const int n = std::get<0>(GetParam());
    const SplitPolicy policy = std::get<1>(GetParam());
    const auto spheres =
        randomSpheres(static_cast<std::size_t>(n), 100 + n, 0.08f);
    Bvh bvh;
    BvhBuildParams params;
    params.policy = policy;
    bvh.build(spheres, params);

    Rng rng(7);
    for (int trial = 0; trial < 50; ++trial) {
        Ray ray;
        ray.origin = {rng.uniform(-1.2f, 1.2f), rng.uniform(-1.2f, 1.2f),
                      -0.5f};
        ray.dir = {0, 0, 1};
        ray.tmax = rng.uniform(0.5f, 6.0f);

        TraversalStats s1, s2;
        const auto bvh_hits = hitSet([&](auto &&fn) {
            bvh.traverse(ray, spheres, s1, fn);
        });
        const auto lin_hits = hitSet([&](auto &&fn) {
            Bvh::traverseLinear(ray, spheres, s2, fn);
        });
        EXPECT_EQ(bvh_hits, lin_hits) << "trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndPolicies, BvhEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 7, 64, 500, 2000),
                       ::testing::Values(SplitPolicy::kBinnedSah,
                                         SplitPolicy::kMedian)));

TEST(Bvh, ThitValuesMatchLinear)
{
    const auto spheres = randomSpheres(300, 11, 0.1f);
    Bvh bvh;
    bvh.build(spheres);
    Ray ray;
    ray.origin = {0.1f, -0.2f, -1.0f};
    ray.dir = {0, 0, 1};

    std::map<std::uint32_t, float> bvh_t, lin_t;
    TraversalStats stats;
    bvh.traverse(ray, spheres, stats, [&](const Hit &hit) {
        bvh_t[hit.prim_id] = hit.thit;
        return true;
    });
    Bvh::traverseLinear(ray, spheres, stats, [&](const Hit &hit) {
        lin_t[hit.prim_id] = hit.thit;
        return true;
    });
    ASSERT_EQ(bvh_t.size(), lin_t.size());
    for (const auto &[prim, t] : bvh_t)
        EXPECT_FLOAT_EQ(t, lin_t.at(prim));
}

TEST(Bvh, EarlyTerminationStopsTraversal)
{
    const auto spheres = randomSpheres(500, 13, 0.3f);
    Bvh bvh;
    bvh.build(spheres);
    Ray ray;
    ray.origin = {0, 0, -1};
    ray.dir = {0, 0, 1};
    int hits = 0;
    TraversalStats stats;
    bvh.traverse(ray, spheres, stats, [&](const Hit &) {
        ++hits;
        return false; // terminate on first hit
    });
    EXPECT_LE(hits, 1);
}

TEST(Bvh, LogarithmicDepthOnUniformData)
{
    const auto spheres = randomSpheres(4096, 17, 0.01f);
    Bvh bvh;
    bvh.build(spheres);
    // A decent tree over 4096 prims (leaf<=4) needs ~10 levels; allow
    // slack but reject pathological linear chains.
    EXPECT_LE(bvh.depth(), 40);
    EXPECT_GE(bvh.depth(), 8);
}

TEST(Bvh, SahBeatsOrMatchesMedianCost)
{
    const auto spheres = randomSpheres(2048, 19, 0.02f);
    Bvh sah, median;
    BvhBuildParams sp, mp;
    sp.policy = SplitPolicy::kBinnedSah;
    mp.policy = SplitPolicy::kMedian;
    sah.build(spheres, sp);
    median.build(spheres, mp);
    EXPECT_LE(sah.sahCost(), median.sahCost() * 1.2);
}

TEST(Bvh, TraversalVisitsFewNodesComparedToLinear)
{
    const auto spheres = randomSpheres(8192, 23, 0.01f);
    Bvh bvh;
    bvh.build(spheres);
    Ray ray;
    ray.origin = {0.0f, 0.0f, -1.0f};
    ray.dir = {0, 0, 1};
    TraversalStats bvh_stats, lin_stats;
    bvh.traverse(ray, spheres, bvh_stats,
                 [](const Hit &) { return true; });
    Bvh::traverseLinear(ray, spheres, lin_stats,
                        [](const Hit &) { return true; });
    // The tree should test far fewer primitives than the linear scan
    // (this is the log-vs-linear claim behind the RT mapping).
    EXPECT_LT(bvh_stats.prim_tests, lin_stats.prim_tests / 4);
}

TEST(Bvh, StatsAccumulateAcrossRays)
{
    const auto spheres = randomSpheres(100, 29, 0.05f);
    Bvh bvh;
    bvh.build(spheres);
    TraversalStats stats;
    Ray ray;
    ray.origin = {0, 0, -1};
    ray.dir = {0, 0, 1};
    bvh.traverse(ray, spheres, stats, [](const Hit &) { return true; });
    bvh.traverse(ray, spheres, stats, [](const Hit &) { return true; });
    EXPECT_EQ(stats.rays, 2u);
}

TEST(Bvh, IdenticalCentersStillBuild)
{
    // Degenerate input: all spheres at the same point.
    std::vector<Sphere> spheres(64);
    for (std::size_t i = 0; i < spheres.size(); ++i) {
        spheres[i].center = {1, 1, 1};
        spheres[i].radius = 0.1f;
        spheres[i].user_id = i;
    }
    Bvh bvh;
    bvh.build(spheres);
    Ray ray;
    ray.origin = {1, 1, -1};
    ray.dir = {0, 0, 1};
    TraversalStats stats;
    int hits = 0;
    bvh.traverse(ray, spheres, stats, [&](const Hit &) {
        ++hits;
        return true;
    });
    EXPECT_EQ(hits, 64);
}

} // namespace
} // namespace rt
} // namespace juno
