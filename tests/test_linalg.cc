/** @file Tests for the small linear-algebra routines behind OPQ. */
#include <gtest/gtest.h>

#include <cmath>

#include "common/distance.h"
#include "common/linalg.h"
#include "common/logging.h"
#include "common/rng.h"

namespace juno {
namespace {

FloatMatrix
randomMatrix(idx_t rows, idx_t cols, std::uint64_t seed)
{
    Rng rng(seed);
    FloatMatrix m(rows, cols);
    for (idx_t r = 0; r < rows; ++r)
        for (idx_t c = 0; c < cols; ++c)
            m.at(r, c) = rng.uniform(-1.0f, 1.0f);
    return m;
}

TEST(Linalg, TransposeBasic)
{
    FloatMatrix m(2, 3);
    for (idx_t r = 0; r < 2; ++r)
        for (idx_t c = 0; c < 3; ++c)
            m.at(r, c) = static_cast<float>(r * 3 + c);
    const auto t = transpose(m.view());
    EXPECT_EQ(t.rows(), 3);
    EXPECT_EQ(t.cols(), 2);
    EXPECT_FLOAT_EQ(t.at(2, 1), m.at(1, 2));
}

TEST(Linalg, MatmulAgainstGemm)
{
    const auto a = randomMatrix(4, 5, 1);
    const auto b = randomMatrix(5, 3, 2);
    const auto c = matmul(a.view(), b.view());
    FloatMatrix ref;
    gemm(a.view(), b.view(), ref);
    EXPECT_LT(maxAbsDiff(c.view(), ref.view()), 1e-5f);
}

TEST(Linalg, IdentityIsOrthonormal)
{
    EXPECT_TRUE(isOrthonormal(identity(5).view()));
}

TEST(Linalg, JacobiSvdReconstructs)
{
    const auto a = randomMatrix(8, 5, 3);
    const auto svd = jacobiSvd(a.view());
    ASSERT_EQ(svd.u.rows(), 8);
    ASSERT_EQ(svd.u.cols(), 5);
    ASSERT_EQ(svd.v.rows(), 5);
    // Reassemble u * diag(s) * v^T.
    FloatMatrix us(8, 5);
    for (idx_t r = 0; r < 8; ++r)
        for (idx_t c = 0; c < 5; ++c)
            us.at(r, c) = svd.u.at(r, c) *
                          svd.s[static_cast<std::size_t>(c)];
    const auto rec = matmul(us.view(), transpose(svd.v.view()).view());
    EXPECT_LT(maxAbsDiff(rec.view(), a.view()), 1e-3f);
}

TEST(Linalg, SvdSingularValuesDescendingNonNegative)
{
    const auto a = randomMatrix(10, 6, 4);
    const auto svd = jacobiSvd(a.view());
    for (std::size_t i = 0; i < svd.s.size(); ++i) {
        EXPECT_GE(svd.s[i], 0.0f);
        if (i > 0) {
            EXPECT_LE(svd.s[i], svd.s[i - 1] + 1e-6f);
        }
    }
}

TEST(Linalg, SvdFactorsAreOrthonormal)
{
    const auto a = randomMatrix(9, 6, 5);
    const auto svd = jacobiSvd(a.view());
    EXPECT_TRUE(isOrthonormal(svd.u.view(), 5e-3f));
    EXPECT_TRUE(isOrthonormal(svd.v.view(), 5e-3f));
}

TEST(Linalg, SvdOfDiagonalIsExact)
{
    FloatMatrix d(3, 3, 0.0f);
    d.at(0, 0) = 3.0f;
    d.at(1, 1) = 2.0f;
    d.at(2, 2) = 1.0f;
    const auto svd = jacobiSvd(d.view());
    EXPECT_NEAR(svd.s[0], 3.0f, 1e-5f);
    EXPECT_NEAR(svd.s[1], 2.0f, 1e-5f);
    EXPECT_NEAR(svd.s[2], 1.0f, 1e-5f);
}

TEST(Linalg, SvdRejectsWideMatrix)
{
    FloatMatrix wide(2, 5);
    EXPECT_THROW(jacobiSvd(wide.view()), ConfigError);
}

TEST(Linalg, ProcrustesRecoversKnownRotation)
{
    // Build a random orthogonal R from SVD, rotate X, recover it.
    const auto seed_m = randomMatrix(6, 6, 7);
    const auto base_svd = jacobiSvd(seed_m.view());
    const auto r_true =
        matmul(base_svd.u.view(), transpose(base_svd.v.view()).view());
    ASSERT_TRUE(isOrthonormal(r_true.view(), 5e-3f));

    const auto x = randomMatrix(50, 6, 8);
    const auto y = matmul(x.view(), r_true.view());
    const auto r_est = procrustes(x.view(), y.view());
    EXPECT_LT(maxAbsDiff(r_est.view(), r_true.view()), 1e-2f);
}

TEST(Linalg, ProcrustesResultIsOrthogonal)
{
    const auto x = randomMatrix(40, 5, 9);
    const auto y = randomMatrix(40, 5, 10);
    const auto r = procrustes(x.view(), y.view());
    EXPECT_TRUE(isOrthonormal(r.view(), 5e-3f));
}

} // namespace
} // namespace juno
