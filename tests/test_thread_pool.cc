/** @file Unit tests for the thread pool. */
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace juno {
namespace {

TEST(ThreadPool, InlineModeRunsJobs)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1);
    int counter = 0;
    pool.submit([&] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter, 1);
}

TEST(ThreadPool, MultiThreadRunsAllJobs)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(50);
    pool.parallelFor(50, [&](idx_t i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange)
{
    ThreadPool pool(2);
    bool called = false;
    pool.parallelFor(0, [&](idx_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSingleItem)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(1, [&](idx_t i) {
        EXPECT_EQ(i, 0);
        calls.fetch_add(1);
    });
    EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ParallelForComputesSum)
{
    ThreadPool pool(0); // auto-sized
    std::vector<long> values(1000);
    pool.parallelFor(1000, [&](idx_t i) {
        values[static_cast<std::size_t>(i)] = static_cast<long>(i) * 2;
    });
    const long sum = std::accumulate(values.begin(), values.end(), 0L);
    EXPECT_EQ(sum, 999L * 1000L);
}

TEST(ThreadPool, WaitIsIdempotent)
{
    ThreadPool pool(2);
    pool.submit([] {});
    pool.wait();
    pool.wait();
    SUCCEED();
}

TEST(ThreadPool, ParallelForRespectsMinGrain)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(100);
    pool.parallelFor(
        100,
        [&](idx_t i) { hits[static_cast<std::size_t>(i)].fetch_add(1); },
        /*min_grain=*/40);
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
    // A grain covering the whole range must still visit everything.
    std::atomic<int> calls{0};
    pool.parallelFor(10, [&](idx_t) { calls.fetch_add(1); }, 1000);
    EXPECT_EQ(calls.load(), 10);
}

TEST(ThreadPool, BatchJoinsItsOwnJobsOnly)
{
    ThreadPool pool(3);
    std::atomic<int> batch_jobs{0};
    ThreadPool::Batch batch(pool);
    for (int i = 0; i < 20; ++i)
        batch.submit([&] { batch_jobs.fetch_add(1); });
    batch.join();
    EXPECT_EQ(batch_jobs.load(), 20);
    batch.join(); // idempotent
    EXPECT_EQ(batch_jobs.load(), 20);
}

TEST(ThreadPool, ConcurrentBatchesShareOnePool)
{
    ThreadPool pool(4);
    std::atomic<int> total{0};
    // Two batches submitted from two caller threads; each join() must
    // only wait for its own jobs (no cross-batch wait()).
    auto run_batch = [&] {
        ThreadPool::Batch batch(pool);
        for (int i = 0; i < 50; ++i)
            batch.submit([&] { total.fetch_add(1); });
        batch.join();
    };
    std::thread a(run_batch), b(run_batch);
    a.join();
    b.join();
    EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPool, ShutdownDrainsQueuedJobs)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 64; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    pool.shutdown();
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, ShutdownIsIdempotent)
{
    ThreadPool pool(3);
    pool.submit([] {});
    pool.shutdown();
    pool.shutdown();
    pool.shutdown();
    SUCCEED();
}

TEST(ThreadPool, ConcurrentShutdownIsSafe)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    std::vector<std::thread> closers;
    for (int i = 0; i < 4; ++i)
        closers.emplace_back([&] { pool.shutdown(); });
    for (auto &c : closers)
        c.join();
    // Every shutdown() return implies the workers are joined and the
    // queue fully drained.
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, SubmitAfterShutdownRunsInline)
{
    ThreadPool pool(2);
    pool.shutdown();
    std::thread::id ran_on;
    pool.submit([&] { ran_on = std::this_thread::get_id(); });
    EXPECT_EQ(ran_on, std::this_thread::get_id());
    // parallelFor keeps working too (degraded to the caller).
    std::atomic<int> hits{0};
    pool.parallelFor(10, [&](idx_t) { hits.fetch_add(1); });
    EXPECT_EQ(hits.load(), 10);
}

TEST(ThreadPool, ShutdownInlinePool)
{
    ThreadPool pool(1);
    pool.shutdown();
    pool.shutdown();
    int count = 0;
    pool.submit([&] { ++count; });
    EXPECT_EQ(count, 1);
}

TEST(ThreadPool, BatchInlineMode)
{
    ThreadPool pool(1);
    int count = 0;
    ThreadPool::Batch batch(pool);
    batch.submit([&] { ++count; });
    batch.join();
    EXPECT_EQ(count, 1);
}

// TSan regression stress: producers hammer submit() while shutdown()
// tears the pool down. The contract under fire is "never silently
// dropped" — a job racing the teardown must run queued OR inline,
// exactly once, and shutdown()'s return must imply the queue drained.
// (Historically the dangerous window is submit() observing stopping_
// between the teardown owner swapping the queue and the join.)
TEST(ThreadPool, ConcurrentShutdownVsSubmit)
{
    for (int round = 0; round < 8; ++round) {
        ThreadPool pool(3);
        constexpr int kProducers = 4;
        constexpr int kJobsPer = 200;
        std::atomic<int> ran{0};
        std::atomic<bool> go{false};
        std::vector<std::thread> producers;
        producers.reserve(kProducers);
        for (int p = 0; p < kProducers; ++p)
            producers.emplace_back([&] {
                while (!go.load())
                    std::this_thread::yield();
                for (int j = 0; j < kJobsPer; ++j)
                    pool.submit([&] { ran.fetch_add(1); });
            });
        std::thread closer([&] {
            while (!go.load())
                std::this_thread::yield();
            // Land the teardown mid-burst rather than before or after
            // the whole storm (a sleep would just serialize the test).
            while (ran.load() < kProducers * kJobsPer / 4)
                std::this_thread::yield();
            pool.shutdown();
        });
        go.store(true);
        for (auto &p : producers)
            p.join();
        closer.join();
        pool.shutdown();
        EXPECT_EQ(ran.load(), kProducers * kJobsPer) << "round " << round;
    }
}

} // namespace
} // namespace juno
