/**
 * @file
 * Tests of the deterministic fault-injection harness. The whole suite
 * skips in builds without -DJUNO_FAULT_INJECTION=1 (the harness is a
 * constant-false no-op there — also asserted below), and is exercised
 * for real by the chaos CI leg, which configures with the option ON.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "serve/request_queue.h"

namespace juno {
namespace {

using namespace std::chrono_literals;

class FaultInjection : public ::testing::Test {
  protected:
    void
    SetUp() override
    {
        if (!fault::kEnabled)
            GTEST_SKIP()
                << "fault injection compiled out (JUNO_FAULT_INJECTION)";
        fault::resetAll();
    }

    void
    TearDown() override
    {
        fault::resetAll();
    }
};

TEST_F(FaultInjection, UnarmedSiteIsInert)
{
    for (int i = 0; i < 100; ++i) {
        EXPECT_NO_THROW(fault::inject("test.unarmed"));
        EXPECT_FALSE(fault::fired("test.unarmed"));
    }
    // Unarmed evaluations do not count (the site has no counters).
    EXPECT_EQ(fault::stats("test.unarmed").evaluations, 0u);
}

TEST_F(FaultInjection, ProbabilityOneAlwaysThrows)
{
    fault::arm("test.always", 1.0, 7);
    for (int i = 0; i < 10; ++i)
        EXPECT_THROW(fault::inject("test.always"), FaultInjectedError);
    const auto s = fault::stats("test.always");
    EXPECT_EQ(s.evaluations, 10u);
    EXPECT_EQ(s.errors, 10u);
    EXPECT_EQ(s.delays, 0u);
}

TEST_F(FaultInjection, ProbabilityZeroNeverFires)
{
    fault::arm("test.never", 0.0, 7);
    for (int i = 0; i < 100; ++i)
        EXPECT_NO_THROW(fault::inject("test.never"));
    EXPECT_EQ(fault::stats("test.never").errors, 0u);
    EXPECT_EQ(fault::stats("test.never").evaluations, 100u);
}

TEST_F(FaultInjection, SameSeedFiresOnIdenticalEvaluations)
{
    auto firePattern = [](std::uint64_t seed) {
        fault::resetAll();
        fault::arm("test.det", 0.3, seed);
        std::vector<bool> pattern;
        for (int i = 0; i < 200; ++i)
            pattern.push_back(fault::fired("test.det"));
        return pattern;
    };
    const auto a = firePattern(1234);
    const auto b = firePattern(1234);
    const auto c = firePattern(99);
    EXPECT_EQ(a, b); // same (prob, seed) -> bit-identical schedule
    EXPECT_NE(a, c); // a different seed is a different schedule
    // And the rate is in the right ballpark for prob 0.3.
    const auto fires = static_cast<std::size_t>(
        std::count(a.begin(), a.end(), true));
    EXPECT_GT(fires, 30u);
    EXPECT_LT(fires, 90u);
}

TEST_F(FaultInjection, DelayModeSleepsInsteadOfThrowing)
{
    fault::arm("test.delay", 1.0, 7, 20.0);
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_NO_THROW(fault::inject("test.delay"));
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_GE(elapsed, 15ms);
    const auto s = fault::stats("test.delay");
    EXPECT_EQ(s.delays, 1u);
    EXPECT_EQ(s.errors, 0u);
    // fired() in delay mode still sleeps but reports no error.
    EXPECT_FALSE(fault::fired("test.delay"));
}

TEST_F(FaultInjection, DisarmStopsFiringAndClearsStats)
{
    fault::arm("test.disarm", 1.0, 7);
    EXPECT_THROW(fault::inject("test.disarm"), FaultInjectedError);
    fault::disarm("test.disarm");
    EXPECT_NO_THROW(fault::inject("test.disarm"));
    EXPECT_EQ(fault::stats("test.disarm").evaluations, 0u);
}

// The queue.notify site: with every producer notify suppressed, the
// consumer's bounded empty-wait poll must still drain everything —
// the lost-wake self-healing the notify-protocol invariant promises.
TEST_F(FaultInjection, QueueDrainsWithAllNotifiesSuppressed)
{
    fault::arm("queue.notify", 1.0, 7);
    BoundedMpmcQueue<int> queue(16);
    std::vector<int> drained;
    std::thread consumer([&] {
        std::vector<int> batch;
        while (queue.popBatch(batch, 4, 0us))
            drained.insert(drained.end(), batch.begin(), batch.end());
    });
    for (int i = 0; i < 32; ++i) {
        while (queue.tryPush(int(i)) == PushResult::kFull)
            std::this_thread::yield();
    }
    queue.close(); // close() notifies unconditionally (no fault site)
    consumer.join();
    EXPECT_EQ(drained.size(), 32u);
    EXPECT_GT(fault::stats("queue.notify").errors, 0u);
}

} // namespace
} // namespace juno
