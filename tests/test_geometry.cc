/** @file Tests for rays, spheres, AABBs and the thit identities. */
#include <gtest/gtest.h>

#include <cmath>

#include "rtcore/geometry.h"

namespace juno {
namespace rt {
namespace {

TEST(Vec3, Arithmetic)
{
    const Vec3 a{1, 2, 3}, b{4, 5, 6};
    const Vec3 sum = a + b;
    EXPECT_FLOAT_EQ(sum.x, 5);
    EXPECT_FLOAT_EQ(sum.y, 7);
    EXPECT_FLOAT_EQ(sum.z, 9);
    EXPECT_FLOAT_EQ(a.dot(b), 32);
    EXPECT_FLOAT_EQ((a * 2).y, 4);
    EXPECT_FLOAT_EQ((Vec3{3, 4, 0}).length(), 5);
}

TEST(Aabb, GrowAndValidity)
{
    Aabb b;
    EXPECT_FALSE(b.valid());
    b.grow(Vec3{0, 0, 0});
    b.grow(Vec3{1, 2, 3});
    EXPECT_TRUE(b.valid());
    EXPECT_FLOAT_EQ(b.hi.y, 2);
    EXPECT_FLOAT_EQ(b.surfaceArea(), 2 * (1 * 2 + 2 * 3 + 3 * 1));
}

TEST(Aabb, OfSphereBoundsIt)
{
    Sphere s;
    s.center = {1, 2, 3};
    s.radius = 0.5f;
    const Aabb b = Aabb::of(s);
    EXPECT_FLOAT_EQ(b.lo.x, 0.5f);
    EXPECT_FLOAT_EQ(b.hi.z, 3.5f);
}

TEST(Aabb, SlabTestHitsAndMisses)
{
    Aabb b;
    b.grow(Vec3{-1, -1, 4});
    b.grow(Vec3{1, 1, 6});
    Ray through;
    through.origin = {0, 0, 0};
    through.dir = {0, 0, 1};
    Vec3 inv{1e30f, 1e30f, 1.0f};
    EXPECT_TRUE(b.hitBy(through, inv));

    Ray miss = through;
    miss.origin = {5, 0, 0};
    EXPECT_FALSE(b.hitBy(miss, inv));

    Ray capped = through;
    capped.tmax = 3.0f; // box starts at z = 4
    EXPECT_FALSE(b.hitBy(capped, inv));

    Ray behind = through;
    behind.origin = {0, 0, 10};
    EXPECT_FALSE(b.hitBy(behind, inv));

    Ray behind_ok = behind;
    behind_ok.tmin = -20.0f; // negative interval reaches backwards
    EXPECT_TRUE(b.hitBy(behind_ok, inv));
}

TEST(Sphere, IntersectStraightThrough)
{
    Sphere s;
    s.center = {0, 0, 5};
    s.radius = 1.0f;
    Ray ray;
    ray.origin = {0, 0, 0};
    ray.dir = {0, 0, 1};
    float thit;
    ASSERT_TRUE(intersectSphere(ray, s, thit));
    EXPECT_FLOAT_EQ(thit, 4.0f); // entry at z = 4
}

TEST(Sphere, MissesWhenOffset)
{
    Sphere s;
    s.center = {3, 0, 5};
    s.radius = 1.0f;
    Ray ray;
    ray.origin = {0, 0, 0};
    ray.dir = {0, 0, 1};
    float thit;
    EXPECT_FALSE(intersectSphere(ray, s, thit));
}

TEST(Sphere, TmaxGatesHit)
{
    Sphere s;
    s.center = {0, 0, 5};
    s.radius = 1.0f;
    Ray ray;
    ray.origin = {0, 0, 0};
    ray.dir = {0, 0, 1};
    ray.tmax = 3.9f;
    float thit;
    EXPECT_FALSE(intersectSphere(ray, s, thit));
    ray.tmax = 4.1f;
    EXPECT_TRUE(intersectSphere(ray, s, thit));
}

TEST(Sphere, InsideOriginReportsExitWithDefaultTmin)
{
    Sphere s;
    s.center = {0, 0, 0};
    s.radius = 2.0f;
    Ray ray;
    ray.origin = {0, 0, 0};
    ray.dir = {0, 0, 1};
    float thit;
    ASSERT_TRUE(intersectSphere(ray, s, thit));
    EXPECT_FLOAT_EQ(thit, 2.0f); // exit root, entry is behind tmin=0
}

TEST(Sphere, NegativeTminReportsEntryRoot)
{
    Sphere s;
    s.center = {0, 0, 0};
    s.radius = 2.0f;
    Ray ray;
    ray.origin = {0, 0, 0};
    ray.dir = {0, 0, 1};
    ray.tmin = -10.0f;
    float thit;
    ASSERT_TRUE(intersectSphere(ray, s, thit));
    EXPECT_FLOAT_EQ(thit, -2.0f); // true entry root admitted
}

TEST(Sphere, TangentRayCounts)
{
    Sphere s;
    s.center = {1, 0, 5};
    s.radius = 1.0f;
    Ray ray;
    ray.origin = {0, 0, 0};
    ray.dir = {0, 0, 1};
    float thit;
    ASSERT_TRUE(intersectSphere(ray, s, thit));
    EXPECT_NEAR(thit, 5.0f, 1e-4f);
}

/**
 * The identity the whole JUNO distance recovery rests on (paper Fig. 9
 * left): for a +z unit ray at distance 1 from the sphere plane,
 * L2^2(q, e) == R^2 - (1 - thit)^2.
 */
class ThitIdentity : public ::testing::TestWithParam<float> {};

TEST_P(ThitIdentity, RecoversPlanarDistance)
{
    const float d = GetParam(); // 2-D distance between ray and center
    const float R = 1.0f;
    if (d >= R)
        return; // no hit expected
    Sphere s;
    s.center = {d, 0, 1};
    s.radius = R;
    Ray ray;
    ray.origin = {0, 0, 0};
    ray.dir = {0, 0, 1};
    float thit;
    ASSERT_TRUE(intersectSphere(ray, s, thit));
    const float recovered = R * R - (1 - thit) * (1 - thit);
    EXPECT_NEAR(recovered, d * d, 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Distances, ThitIdentity,
                         ::testing::Values(0.0f, 0.1f, 0.25f, 0.5f, 0.7f,
                                           0.9f, 0.99f));

/**
 * The inner-product identity (paper Sec. 4.2): with radius inflated to
 * R' = sqrt(R^2 + ||e||^2), IP(e, q) == (||q||^2 - R^2 + (1-thit)^2)/2.
 */
TEST(ThitIdentityIp, RecoversInnerProduct)
{
    const float R = 1.0f;
    const float ex = 0.4f, ey = -0.3f; // entry coordinates
    const float qx = 0.2f, qy = 0.5f;  // query projection
    Sphere s;
    s.center = {ex, ey, 1};
    s.radius = std::sqrt(R * R + ex * ex + ey * ey);
    Ray ray;
    ray.origin = {qx, qy, 0};
    ray.dir = {0, 0, 1};
    ray.tmin = -10.0f; // entry root may be negative
    float thit;
    ASSERT_TRUE(intersectSphere(ray, s, thit));
    const float q2 = qx * qx + qy * qy;
    const float recovered = 0.5f * (q2 - R * R + (1 - thit) * (1 - thit));
    EXPECT_NEAR(recovered, ex * qx + ey * qy, 1e-5f);
}

} // namespace
} // namespace rt
} // namespace juno
