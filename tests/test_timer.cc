/** @file Unit tests for timers and the per-stage ledger. */
#include <gtest/gtest.h>

#include <thread>

#include "common/timer.h"

namespace juno {
namespace {

TEST(Timer, MeasuresElapsedTime)
{
    Timer t;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_GE(t.millis(), 9.0);
    EXPECT_LT(t.millis(), 500.0);
}

TEST(Timer, ResetRestartsClock)
{
    Timer t;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    t.reset();
    EXPECT_LT(t.millis(), 5.0);
}

TEST(Timer, UnitConversions)
{
    Timer t;
    const double s = t.seconds();
    EXPECT_GE(s, 0.0);
    EXPECT_GE(t.millis(), 0.0);
    EXPECT_GE(t.micros(), 0.0);
}

TEST(StageTimers, AccumulatesPerStage)
{
    StageTimers timers;
    timers.add(Stage::kLut, 1.0);
    timers.add(Stage::kScan, 2.0);
    timers.add(Stage::kLut, 0.5);
    EXPECT_DOUBLE_EQ(timers.seconds(Stage::kLut), 1.5);
    EXPECT_DOUBLE_EQ(timers.seconds(Stage::kScan), 2.0);
    EXPECT_DOUBLE_EQ(timers.totalSeconds(), 3.5);
}

TEST(StageTimers, StringLookupMatchesEnum)
{
    StageTimers timers;
    timers.add(Stage::kFilter, 0.25);
    EXPECT_DOUBLE_EQ(timers.seconds("filter"), 0.25);
    EXPECT_DOUBLE_EQ(timers.seconds(stageName(Stage::kFilter)), 0.25);
}

TEST(StageTimers, UnknownStageIsZero)
{
    StageTimers timers;
    EXPECT_DOUBLE_EQ(timers.seconds("missing"), 0.0);
    EXPECT_DOUBLE_EQ(timers.seconds(Stage::kGraph), 0.0);
}

TEST(StageTimers, NamesFollowStageOrder)
{
    // The ledger is a fixed array now: names() reports recorded
    // stages in enum order regardless of recording order.
    StageTimers timers;
    timers.add(Stage::kScan, 0.3);
    timers.add(Stage::kFilter, 0.1);
    timers.add(Stage::kLut, 0.2);
    timers.add(Stage::kFilter, 0.1);
    ASSERT_EQ(timers.names().size(), 3u);
    EXPECT_EQ(timers.names()[0], "filter");
    EXPECT_EQ(timers.names()[1], "lut");
    EXPECT_EQ(timers.names()[2], "scan");
}

TEST(StageTimers, ZeroAddStillRecordsTheStage)
{
    // A stage that ran in 0 measurable time must still appear in the
    // report (names() tracks "seen", not "nonzero").
    StageTimers timers;
    timers.add(Stage::kRtLut, 0.0);
    ASSERT_EQ(timers.names().size(), 1u);
    EXPECT_EQ(timers.names()[0], "rt_lut");
}

TEST(StageTimers, ResetClearsEverything)
{
    StageTimers timers;
    timers.add(Stage::kPipelineWall, 1.0);
    timers.reset();
    EXPECT_TRUE(timers.names().empty());
    EXPECT_DOUBLE_EQ(timers.totalSeconds(), 0.0);
}

TEST(StageTimers, MergeSumsStageWise)
{
    StageTimers a, b;
    a.add(Stage::kScan, 1.0);
    b.add(Stage::kScan, 2.0);
    b.add(Stage::kGraph, 3.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.seconds(Stage::kScan), 3.0);
    EXPECT_DOUBLE_EQ(a.seconds(Stage::kGraph), 3.0);
    ASSERT_EQ(a.names().size(), 2u);
}

TEST(StageTimers, EveryStageHasAName)
{
    for (std::size_t s = 0; s < kNumStages; ++s)
        EXPECT_STRNE(stageName(static_cast<Stage>(s)), "");
}

TEST(ScopedStageTimer, AddsOnDestruction)
{
    StageTimers timers;
    {
        ScopedStageTimer scoped(timers, Stage::kScan);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GT(timers.seconds(Stage::kScan), 0.0);
}

} // namespace
} // namespace juno
