/** @file Unit tests for timers and the per-stage ledger. */
#include <gtest/gtest.h>

#include <thread>

#include "common/timer.h"

namespace juno {
namespace {

TEST(Timer, MeasuresElapsedTime)
{
    Timer t;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_GE(t.millis(), 9.0);
    EXPECT_LT(t.millis(), 500.0);
}

TEST(Timer, ResetRestartsClock)
{
    Timer t;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    t.reset();
    EXPECT_LT(t.millis(), 5.0);
}

TEST(Timer, UnitConversions)
{
    Timer t;
    const double s = t.seconds();
    EXPECT_GE(s, 0.0);
    EXPECT_GE(t.millis(), 0.0);
    EXPECT_GE(t.micros(), 0.0);
}

TEST(StageTimers, AccumulatesPerStage)
{
    StageTimers timers;
    timers.add("lut", 1.0);
    timers.add("scan", 2.0);
    timers.add("lut", 0.5);
    EXPECT_DOUBLE_EQ(timers.seconds("lut"), 1.5);
    EXPECT_DOUBLE_EQ(timers.seconds("scan"), 2.0);
    EXPECT_DOUBLE_EQ(timers.totalSeconds(), 3.5);
}

TEST(StageTimers, UnknownStageIsZero)
{
    StageTimers timers;
    EXPECT_DOUBLE_EQ(timers.seconds("missing"), 0.0);
}

TEST(StageTimers, NamesPreserveInsertionOrder)
{
    StageTimers timers;
    timers.add("filter", 0.1);
    timers.add("lut", 0.2);
    timers.add("scan", 0.3);
    timers.add("filter", 0.1);
    ASSERT_EQ(timers.names().size(), 3u);
    EXPECT_EQ(timers.names()[0], "filter");
    EXPECT_EQ(timers.names()[1], "lut");
    EXPECT_EQ(timers.names()[2], "scan");
}

TEST(StageTimers, ResetClearsEverything)
{
    StageTimers timers;
    timers.add("a", 1.0);
    timers.reset();
    EXPECT_TRUE(timers.names().empty());
    EXPECT_DOUBLE_EQ(timers.totalSeconds(), 0.0);
}

TEST(StageTimers, MergeSumsStageWise)
{
    StageTimers a, b;
    a.add("x", 1.0);
    b.add("x", 2.0);
    b.add("y", 3.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.seconds("x"), 3.0);
    EXPECT_DOUBLE_EQ(a.seconds("y"), 3.0);
}

TEST(ScopedStageTimer, AddsOnDestruction)
{
    StageTimers timers;
    {
        ScopedStageTimer scoped(timers, "scope");
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GT(timers.seconds("scope"), 0.0);
}

} // namespace
} // namespace juno
