/** @file Unit + property tests for the distance kernels. */
#include <gtest/gtest.h>

#include <cmath>

#include "common/distance.h"
#include "common/logging.h"
#include "common/rng.h"

namespace juno {
namespace {

TEST(Distance, L2SqrBasic)
{
    const float a[] = {1.0f, 2.0f, 3.0f};
    const float b[] = {4.0f, 6.0f, 3.0f};
    EXPECT_FLOAT_EQ(l2Sqr(a, b, 3), 9.0f + 16.0f);
}

TEST(Distance, L2SqrZeroForIdentical)
{
    const float a[] = {1.5f, -2.5f, 0.0f, 7.0f};
    EXPECT_FLOAT_EQ(l2Sqr(a, a, 4), 0.0f);
}

TEST(Distance, InnerProductBasic)
{
    const float a[] = {1.0f, 2.0f, 3.0f};
    const float b[] = {4.0f, 5.0f, 6.0f};
    EXPECT_FLOAT_EQ(innerProduct(a, b, 3), 32.0f);
}

TEST(Distance, NormSqrIsSelfInnerProduct)
{
    const float a[] = {3.0f, 4.0f};
    EXPECT_FLOAT_EQ(l2NormSqr(a, 2), 25.0f);
}

TEST(Distance, ScoreDispatchesOnMetric)
{
    const float a[] = {1.0f, 0.0f};
    const float b[] = {0.0f, 1.0f};
    EXPECT_FLOAT_EQ(score(Metric::kL2, a, b, 2), 2.0f);
    EXPECT_FLOAT_EQ(score(Metric::kInnerProduct, a, b, 2), 0.0f);
}

TEST(Distance, HandlesOddTailLengths)
{
    // Exercise the scalar remainder loop for d % 4 != 0.
    for (idx_t d = 1; d <= 9; ++d) {
        std::vector<float> a(static_cast<std::size_t>(d), 1.0f);
        std::vector<float> b(static_cast<std::size_t>(d), 3.0f);
        EXPECT_FLOAT_EQ(l2Sqr(a.data(), b.data(), d),
                        4.0f * static_cast<float>(d));
        EXPECT_FLOAT_EQ(innerProduct(a.data(), b.data(), d),
                        3.0f * static_cast<float>(d));
    }
}

TEST(Distance, L2DecompositionIdentity)
{
    // ||x - q||^2 == ||x||^2 - 2<x,q> + ||q||^2 (the Tensor-core path).
    Rng rng(5);
    std::vector<float> x(64), q(64);
    for (auto &v : x)
        v = rng.uniform(-2.0f, 2.0f);
    for (auto &v : q)
        v = rng.uniform(-2.0f, 2.0f);
    const float direct = l2Sqr(x.data(), q.data(), 64);
    const float decomposed = l2NormSqr(x.data(), 64) -
                             2.0f * innerProduct(x.data(), q.data(), 64) +
                             l2NormSqr(q.data(), 64);
    EXPECT_NEAR(direct, decomposed, 1e-3f * std::max(1.0f, direct));
}

TEST(Distance, PairwiseScoresMatchScalarL2)
{
    Rng rng(7);
    FloatMatrix queries(3, 16), points(5, 16);
    for (idx_t i = 0; i < 3; ++i)
        for (idx_t j = 0; j < 16; ++j)
            queries.at(i, j) = rng.uniform(-1.0f, 1.0f);
    for (idx_t i = 0; i < 5; ++i)
        for (idx_t j = 0; j < 16; ++j)
            points.at(i, j) = rng.uniform(-1.0f, 1.0f);

    FloatMatrix out;
    pairwiseScores(Metric::kL2, queries.view(), points.view(),
                   rowNormsSqr(points.view()), out);
    ASSERT_EQ(out.rows(), 3);
    ASSERT_EQ(out.cols(), 5);
    for (idx_t qi = 0; qi < 3; ++qi)
        for (idx_t pi = 0; pi < 5; ++pi)
            EXPECT_NEAR(out.at(qi, pi),
                        l2Sqr(queries.row(qi), points.row(pi), 16), 1e-4f);
}

TEST(Distance, PairwiseScoresMatchScalarIp)
{
    Rng rng(9);
    FloatMatrix queries(2, 8), points(4, 8);
    for (idx_t i = 0; i < 2; ++i)
        for (idx_t j = 0; j < 8; ++j)
            queries.at(i, j) = rng.uniform(-1.0f, 1.0f);
    for (idx_t i = 0; i < 4; ++i)
        for (idx_t j = 0; j < 8; ++j)
            points.at(i, j) = rng.uniform(-1.0f, 1.0f);

    FloatMatrix out;
    pairwiseScores(Metric::kInnerProduct, queries.view(), points.view(), {},
                   out);
    for (idx_t qi = 0; qi < 2; ++qi)
        for (idx_t pi = 0; pi < 4; ++pi)
            EXPECT_NEAR(out.at(qi, pi),
                        innerProduct(queries.row(qi), points.row(pi), 8),
                        1e-5f);
}

TEST(Distance, PairwiseScoresWithoutPrecomputedNorms)
{
    Rng rng(11);
    FloatMatrix queries(1, 4), points(2, 4);
    for (idx_t j = 0; j < 4; ++j) {
        queries.at(0, j) = rng.uniform(-1.0f, 1.0f);
        points.at(0, j) = rng.uniform(-1.0f, 1.0f);
        points.at(1, j) = rng.uniform(-1.0f, 1.0f);
    }
    FloatMatrix with_norms, without_norms;
    pairwiseScores(Metric::kL2, queries.view(), points.view(),
                   rowNormsSqr(points.view()), with_norms);
    pairwiseScores(Metric::kL2, queries.view(), points.view(), {},
                   without_norms);
    for (idx_t pi = 0; pi < 2; ++pi)
        EXPECT_FLOAT_EQ(with_norms.at(0, pi), without_norms.at(0, pi));
}

TEST(Distance, PairwiseScoresL2NeverNegative)
{
    Rng rng(13);
    FloatMatrix pts(8, 32);
    for (idx_t i = 0; i < 8; ++i)
        for (idx_t j = 0; j < 32; ++j)
            pts.at(i, j) = rng.uniform(-1.0f, 1.0f);
    FloatMatrix out;
    pairwiseScores(Metric::kL2, pts.view(), pts.view(),
                   rowNormsSqr(pts.view()), out);
    for (idx_t i = 0; i < 8; ++i)
        for (idx_t j = 0; j < 8; ++j)
            EXPECT_GE(out.at(i, j), 0.0f);
}

TEST(Distance, PairwiseScoresRejectsDimMismatch)
{
    FloatMatrix a(1, 4), b(1, 5), out;
    EXPECT_THROW(pairwiseScores(Metric::kL2, a.view(), b.view(), {}, out),
                 ConfigError);
}

TEST(Distance, GemmMatchesManual)
{
    FloatMatrix a(2, 3), b(3, 2), c;
    // a = [[1,2,3],[4,5,6]]; b = [[7,8],[9,10],[11,12]]
    float av[] = {1, 2, 3, 4, 5, 6};
    float bv[] = {7, 8, 9, 10, 11, 12};
    std::copy_n(av, 6, a.data());
    std::copy_n(bv, 6, b.data());
    gemm(a.view(), b.view(), c);
    EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Distance, GemmOnesColumnSumsRows)
{
    // The paper's Tensor-core accumulation trick: A * ones = row sums.
    Rng rng(17);
    FloatMatrix a(4, 6), ones(6, 1), c;
    float expect[4] = {0, 0, 0, 0};
    for (idx_t i = 0; i < 4; ++i)
        for (idx_t j = 0; j < 6; ++j) {
            a.at(i, j) = rng.uniform(-1.0f, 1.0f);
            expect[i] += a.at(i, j);
        }
    for (idx_t j = 0; j < 6; ++j)
        ones.at(j, 0) = 1.0f;
    gemm(a.view(), ones.view(), c);
    for (idx_t i = 0; i < 4; ++i)
        EXPECT_NEAR(c.at(i, 0), expect[i], 1e-5f);
}

TEST(Distance, GemmRejectsShapeMismatch)
{
    FloatMatrix a(2, 3), b(2, 2), c;
    EXPECT_THROW(gemm(a.view(), b.view(), c), ConfigError);
}

/** Property: L2 symmetry and triangle-ish behaviour on random data. */
class DistanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(DistanceProperty, L2SymmetricAndNonNegative)
{
    const int d = GetParam();
    Rng rng(100 + static_cast<std::uint64_t>(d));
    std::vector<float> a(static_cast<std::size_t>(d)),
        b(static_cast<std::size_t>(d));
    for (int trial = 0; trial < 20; ++trial) {
        for (auto &v : a)
            v = rng.uniform(-3.0f, 3.0f);
        for (auto &v : b)
            v = rng.uniform(-3.0f, 3.0f);
        const float ab = l2Sqr(a.data(), b.data(), d);
        const float ba = l2Sqr(b.data(), a.data(), d);
        EXPECT_FLOAT_EQ(ab, ba);
        EXPECT_GE(ab, 0.0f);
        EXPECT_FLOAT_EQ(innerProduct(a.data(), b.data(), d),
                        innerProduct(b.data(), a.data(), d));
    }
}

INSTANTIATE_TEST_SUITE_P(Dims, DistanceProperty,
                         ::testing::Values(1, 2, 3, 7, 16, 96, 128, 200));

} // namespace
} // namespace juno
