/**
 * @file
 * Tests of the tiered degradation state machine: patience-gated tier
 * steps, the hysteresis band between the watermarks, the queue-wait
 * p95 trigger and the per-tier knob table.
 */
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/logging.h"
#include "serve/degradation_policy.h"

namespace juno {
namespace {

DegradationConfig
baseConfig()
{
    DegradationConfig config;
    config.enabled = true;
    config.max_tier = 3;
    config.high_watermark = 0.50;
    config.low_watermark = 0.125;
    config.up_patience = 2;
    config.down_patience = 3;
    return config;
}

TEST(DegradationPolicy, TierZeroKnobsAreNeutral)
{
    const auto knobs = DegradationPolicy::knobsForTier(0);
    EXPECT_DOUBLE_EQ(knobs.nprobe_scale, 1.0);
    EXPECT_DOUBLE_EQ(knobs.scan_tighten, 0.0);
}

TEST(DegradationPolicy, KnobTableIsMonotonicallyMoreAggressive)
{
    double prev_scale = 1.5;
    double prev_tighten = -1.0;
    for (int tier = 0; tier <= DegradationPolicy::kMaxTier; ++tier) {
        const auto knobs = DegradationPolicy::knobsForTier(tier);
        EXPECT_LT(knobs.nprobe_scale, prev_scale) << "tier " << tier;
        EXPECT_GT(knobs.scan_tighten, prev_tighten) << "tier " << tier;
        EXPECT_GT(knobs.nprobe_scale, 0.0);
        EXPECT_LT(knobs.scan_tighten, 1.0);
        prev_scale = knobs.nprobe_scale;
        prev_tighten = knobs.scan_tighten;
    }
}

TEST(DegradationPolicy, StepsUpOnlyAfterUpPatience)
{
    DegradationPolicy policy(baseConfig());
    // One pressured evaluation is not enough (patience = 2)...
    policy.evaluate(80, 100);
    EXPECT_EQ(policy.tier(), 0);
    // ...the second consecutive one steps to tier 1.
    const auto knobs = policy.evaluate(80, 100);
    EXPECT_EQ(policy.tier(), 1);
    EXPECT_DOUBLE_EQ(knobs.nprobe_scale,
                     DegradationPolicy::knobsForTier(1).nprobe_scale);
    EXPECT_EQ(policy.transitions(), 1u);
}

TEST(DegradationPolicy, StepsDownOnlyAfterDownPatience)
{
    DegradationPolicy policy(baseConfig());
    policy.evaluate(80, 100);
    policy.evaluate(80, 100);
    ASSERT_EQ(policy.tier(), 1);
    // Calm evaluations below the low watermark; down_patience = 3.
    policy.evaluate(2, 100);
    policy.evaluate(2, 100);
    EXPECT_EQ(policy.tier(), 1); // still waiting
    policy.evaluate(2, 100);
    EXPECT_EQ(policy.tier(), 0);
    EXPECT_EQ(policy.transitions(), 2u);
}

TEST(DegradationPolicy, HysteresisBandResetsBothStreaks)
{
    DegradationPolicy policy(baseConfig());
    policy.evaluate(80, 100); // pressured x1
    // In-band (between watermarks): neither pressured nor calm, and it
    // must clear the pressured streak — load hovering at the threshold
    // cannot ratchet the tier up.
    policy.evaluate(30, 100);
    policy.evaluate(80, 100); // pressured x1 again
    EXPECT_EQ(policy.tier(), 0);
    policy.evaluate(80, 100); // x2 -> step
    EXPECT_EQ(policy.tier(), 1);
    // Same on the way down: calm x2, in-band, calm must restart.
    policy.evaluate(2, 100);
    policy.evaluate(2, 100);
    policy.evaluate(30, 100);
    policy.evaluate(2, 100);
    policy.evaluate(2, 100);
    EXPECT_EQ(policy.tier(), 1); // streak broken, no step yet
    policy.evaluate(2, 100);
    EXPECT_EQ(policy.tier(), 0);
}

TEST(DegradationPolicy, ClampsAtMaxTier)
{
    auto config = baseConfig();
    config.max_tier = 2;
    DegradationPolicy policy(config);
    for (int i = 0; i < 20; ++i)
        policy.evaluate(99, 100);
    EXPECT_EQ(policy.tier(), 2);
}

TEST(DegradationPolicy, QueueWaitP95TriggersPressureUnderBudget)
{
    auto config = baseConfig();
    config.queue_p95_budget_us = 1000.0;
    DegradationPolicy policy(config);
    // Depth is calm, but measured queue waits blow the budget: the
    // lagging signal alone must drive the tier up.
    std::vector<double> slow(64, 5000.0);
    policy.recordQueueWait(slow);
    policy.evaluate(0, 100);
    policy.evaluate(0, 100);
    EXPECT_EQ(policy.tier(), 1);
    // And a drained window steps it back down (p95 well under budget,
    // depth already calm).
    std::vector<double> fast(512, 10.0); // overwrite the whole window
    policy.recordQueueWait(fast);
    policy.evaluate(0, 100);
    policy.evaluate(0, 100);
    policy.evaluate(0, 100);
    EXPECT_EQ(policy.tier(), 0);
}

TEST(DegradationPolicy, RejectsBadConfig)
{
    auto bad = baseConfig();
    bad.max_tier = DegradationPolicy::kMaxTier + 1;
    EXPECT_THROW({ DegradationPolicy p(bad); }, ConfigError);
    bad = baseConfig();
    bad.low_watermark = 0.6; // must sit below high_watermark
    EXPECT_THROW({ DegradationPolicy p(bad); }, ConfigError);
    bad = baseConfig();
    bad.up_patience = 0;
    EXPECT_THROW({ DegradationPolicy p(bad); }, ConfigError);
    bad = baseConfig();
    bad.queue_p95_budget_us = -1.0;
    EXPECT_THROW({ DegradationPolicy p(bad); }, ConfigError);
}

TEST(DegradationPolicy, ConcurrentEvaluateAndRecordAreSafe)
{
    DegradationPolicy policy(baseConfig());
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&, t] {
            std::vector<double> waits(16, 100.0 * (t + 1));
            for (int i = 0; i < 500; ++i) {
                policy.evaluate(i % 100, 100);
                policy.recordQueueWait(waits);
            }
        });
    for (auto &t : threads)
        t.join();
    EXPECT_GE(policy.tier(), 0);
    EXPECT_LE(policy.tier(), DegradationPolicy::kMaxTier);
}

} // namespace
} // namespace juno
