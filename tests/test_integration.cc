/**
 * @file Cross-module integration tests: JUNO vs. the baselines on the
 * same workloads, verifying the relationships the paper's evaluation
 * depends on.
 */
#include <gtest/gtest.h>

#include "baseline/flat_index.h"
#include "baseline/ivfpq_index.h"
#include "core/juno_index.h"
#include "dataset/ground_truth.h"
#include "dataset/recall.h"
#include "dataset/synthetic.h"

namespace juno {
namespace {

struct Stack {
    Dataset ds;
    GroundTruth gt;

    explicit Stack(Metric metric, idx_t n = 3000, idx_t dim = 16)
    {
        SyntheticSpec spec;
        spec.kind = metric == Metric::kL2 ? DatasetKind::kDeepLike
                                          : DatasetKind::kTtiLike;
        spec.num_points = n;
        spec.num_queries = 30;
        spec.dim = dim;
        spec.components = 20;
        spec.seed = 99;
        ds = makeDataset(spec);
        gt = computeGroundTruth(metric, ds.base.view(), ds.queries.view(),
                                100);
    }
};

TEST(Integration, JunoTracksIvfPqRecallAtSameBudget)
{
    // With identical C / E / nprobs and scale 1.0, JUNO-H's selective
    // LUT should not lose much recall against the dense-LUT baseline
    // (it prunes only entries outside the predicted top-k region).
    Stack stack(Metric::kL2);

    IvfPqIndex::Params bp;
    bp.clusters = 24;
    bp.pq_subspaces = 8; // M = 2 at dim 16, same geometry as JUNO
    bp.pq_entries = 32;
    bp.nprobs = 10;
    IvfPqIndex baseline(Metric::kL2, stack.ds.base.view(), bp);

    JunoParams jp = junoPresetH();
    jp.clusters = 24;
    jp.pq_entries = 32;
    jp.nprobs = 10;
    jp.policy.train_samples = 100;
    jp.policy.ref_samples = 1500;
    jp.density_grid = 40;
    JunoIndex index(Metric::kL2, stack.ds.base.view(), jp);

    const double r_base =
        recall1AtK(stack.gt, baseline.search(stack.ds.queries.view(), 100));
    const double r_juno =
        recall1AtK(stack.gt, index.search(stack.ds.queries.view(), 100));
    EXPECT_GE(r_juno, r_base - 0.12)
        << "JUNO-H " << r_juno << " vs baseline " << r_base;
}

TEST(Integration, JunoDoesLessScanWorkThanBaseline)
{
    // The efficiency claim: selective construction + interest lists
    // must touch fewer LUT cells than the dense pipeline. We compare
    // selected entries against the dense E * S * nprobs count.
    Stack stack(Metric::kL2);
    JunoParams jp = junoPresetH();
    jp.clusters = 24;
    jp.pq_entries = 32;
    jp.nprobs = 10;
    jp.policy.train_samples = 80;
    jp.policy.ref_samples = 1000;
    jp.density_grid = 40;
    JunoIndex index(Metric::kL2, stack.ds.base.view(), jp);

    index.device().resetStats();
    index.search(stack.ds.queries.view(), 100);
    const auto hits = index.rtStats().hits;
    const std::uint64_t dense_cells = 30ull /*queries*/ * 10 /*nprobs*/ *
                                      8 /*subspaces*/ * 32 /*entries*/;
    EXPECT_LT(hits, dense_cells / 2)
        << "selective pass should prune > 50% of LUT cells";
}

TEST(Integration, FlatIsAnUpperBoundOnEveryIndex)
{
    Stack stack(Metric::kL2, 1500);
    FlatIndex flat(Metric::kL2, stack.ds.base.view());
    const double r_flat =
        recall1AtK(stack.gt, flat.search(stack.ds.queries.view(), 100));
    EXPECT_DOUBLE_EQ(r_flat, 1.0);
}

TEST(Integration, InnerProductEndToEnd)
{
    Stack stack(Metric::kInnerProduct, 2000);
    JunoParams jp = junoPresetH();
    jp.clusters = 16;
    jp.pq_entries = 32;
    jp.nprobs = 16;
    jp.policy.train_samples = 80;
    jp.policy.ref_samples = 1000;
    jp.density_grid = 40;
    JunoIndex index(Metric::kInnerProduct, stack.ds.base.view(), jp);
    const double r =
        recall1AtK(stack.gt, index.search(stack.ds.queries.view(), 100));
    EXPECT_GE(r, 0.45);
}

TEST(Integration, R100At1000MetricBehaves)
{
    Stack stack(Metric::kL2, 2500);
    JunoParams jp = junoPresetH();
    jp.clusters = 20;
    jp.pq_entries = 32;
    jp.nprobs = 20;
    jp.policy.train_samples = 80;
    jp.policy.ref_samples = 1000;
    jp.density_grid = 40;
    JunoIndex index(Metric::kL2, stack.ds.base.view(), jp);
    const auto results = index.search(stack.ds.queries.view(), 1000);
    const double r100 = recallMAtK(stack.gt, results, 100);
    EXPECT_GT(r100, 0.4);
    EXPECT_LE(r100, 1.0);
}

TEST(Integration, HitCountModeIsCheaperThanExact)
{
    Stack stack(Metric::kL2);
    JunoParams jp = junoPresetH();
    jp.clusters = 24;
    jp.pq_entries = 32;
    jp.nprobs = 10;
    jp.policy.train_samples = 80;
    jp.policy.ref_samples = 1000;
    jp.density_grid = 40;
    JunoIndex index(Metric::kL2, stack.ds.base.view(), jp);

    index.setSearchMode(SearchMode::kExactDistance);
    index.device().resetStats();
    index.search(stack.ds.queries.view(), 100);
    const auto work_exact = index.rtStats().hits;

    index.setSearchMode(SearchMode::kHitCount);
    index.setThresholdScale(0.6);
    index.device().resetStats();
    index.search(stack.ds.queries.view(), 100);
    const auto work_count = index.rtStats().hits;

    // The count mode with a tighter gate selects strictly fewer entries
    // (RT hits are the work measure; wall time is too noisy on shared
    // hosts).
    EXPECT_LT(work_count, work_exact);
}

} // namespace
} // namespace juno
