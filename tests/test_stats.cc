/** @file Unit tests for running statistics, quantiles and histograms. */
#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"

namespace juno {
namespace {

TEST(RunningStat, MeanVarianceMinMax)
{
    RunningStat st;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        st.add(x);
    EXPECT_EQ(st.count(), 8u);
    EXPECT_DOUBLE_EQ(st.mean(), 5.0);
    EXPECT_NEAR(st.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(st.min(), 2.0);
    EXPECT_DOUBLE_EQ(st.max(), 9.0);
}

TEST(RunningStat, EmptyAndSingle)
{
    RunningStat st;
    EXPECT_EQ(st.count(), 0u);
    EXPECT_DOUBLE_EQ(st.mean(), 0.0);
    st.add(3.0);
    EXPECT_DOUBLE_EQ(st.mean(), 3.0);
    EXPECT_DOUBLE_EQ(st.variance(), 0.0);
}

TEST(QuantileSketch, MedianAndQuartiles)
{
    QuantileSketch qs;
    for (int i = 1; i <= 101; ++i)
        qs.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(qs.median(), 51.0);
    EXPECT_DOUBLE_EQ(qs.q1(), 26.0);
    EXPECT_DOUBLE_EQ(qs.q3(), 76.0);
    EXPECT_DOUBLE_EQ(qs.iqr(), 50.0);
    EXPECT_DOUBLE_EQ(qs.q0(), 26.0 - 75.0);
    EXPECT_DOUBLE_EQ(qs.q4(), 76.0 + 75.0);
}

TEST(QuantileSketch, InterpolatesBetweenSamples)
{
    QuantileSketch qs;
    qs.add(0.0);
    qs.add(10.0);
    EXPECT_DOUBLE_EQ(qs.quantile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(qs.quantile(0.25), 2.5);
}

TEST(QuantileSketch, SingleSampleAllQuantiles)
{
    QuantileSketch qs;
    qs.add(7.0);
    EXPECT_DOUBLE_EQ(qs.quantile(0.0), 7.0);
    EXPECT_DOUBLE_EQ(qs.quantile(1.0), 7.0);
}

TEST(QuantileSketch, RejectsEmptyAndBadArgs)
{
    QuantileSketch qs;
    EXPECT_THROW(qs.quantile(0.5), ConfigError);
    qs.add(1.0);
    EXPECT_THROW(qs.quantile(-0.1), ConfigError);
    EXPECT_THROW(qs.quantile(1.1), ConfigError);
}

TEST(QuantileSketch, MeanMatchesArithmetic)
{
    QuantileSketch qs;
    qs.add({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(qs.mean(), 2.5);
}

TEST(QuantileSketch, MonotoneInQ)
{
    Rng rng(3);
    QuantileSketch qs;
    for (int i = 0; i < 500; ++i)
        qs.add(rng.gaussian());
    double prev = qs.quantile(0.0);
    for (double q = 0.05; q <= 1.0; q += 0.05) {
        const double v = qs.quantile(q);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(QuantileSketch, MergeMatchesUnion)
{
    QuantileSketch a, b, all;
    for (int i = 0; i < 50; ++i) {
        a.add(static_cast<double>(i));
        all.add(static_cast<double>(i));
    }
    for (int i = 50; i < 101; ++i) {
        b.add(static_cast<double>(i));
        all.add(static_cast<double>(i));
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    for (double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(a.quantile(q), all.quantile(q));
}

TEST(QuantileSketch, MergeEmptySides)
{
    QuantileSketch a, empty;
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.median(), 3.0);
}

TEST(QuantileSketch, MergeAfterQuantileQuery)
{
    // merge() must invalidate the lazily-sorted state.
    QuantileSketch a, b;
    a.add({5.0, 1.0});
    EXPECT_DOUBLE_EQ(a.median(), 3.0); // forces the sort
    b.add({0.0, 0.0, 0.0});
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.median(), 0.0);
}

TEST(QuantileSketch, SelfMergeDoublesSamples)
{
    QuantileSketch a;
    a.add({1.0, 2.0, 3.0});
    a.merge(a);
    EXPECT_EQ(a.count(), 6u);
    EXPECT_DOUBLE_EQ(a.median(), 2.0);
}

TEST(Histogram, CountsAndCdf)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(static_cast<double>(i) + 0.5);
    EXPECT_EQ(h.total(), 10u);
    for (int b = 0; b < 10; ++b)
        EXPECT_EQ(h.countAt(b), 1u);
    EXPECT_DOUBLE_EQ(h.cdfAt(4), 0.5);
    EXPECT_DOUBLE_EQ(h.cdfAt(9), 1.0);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-5.0);
    h.add(5.0);
    EXPECT_EQ(h.countAt(0), 1u);
    EXPECT_EQ(h.countAt(3), 1u);
}

TEST(Histogram, BinCenters)
{
    Histogram h(0.0, 4.0, 4);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
    EXPECT_DOUBLE_EQ(h.binCenter(3), 3.5);
}

TEST(Histogram, RejectsBadConstruction)
{
    EXPECT_THROW(Histogram(0.0, 1.0, 0), ConfigError);
    EXPECT_THROW(Histogram(1.0, 0.0, 4), ConfigError);
}

} // namespace
} // namespace juno
