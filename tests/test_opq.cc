/** @file Tests for Optimized Product Quantization. */
#include <gtest/gtest.h>

#include "common/distance.h"
#include "common/linalg.h"
#include "common/rng.h"
#include "quant/opq.h"

namespace juno {
namespace {

/** Correlated data where a rotation helps: y = x * A with skewed A. */
FloatMatrix
correlatedData(idx_t n, idx_t d, std::uint64_t seed)
{
    Rng rng(seed);
    // A dense mixing matrix correlates adjacent dimensions, which hurts
    // subspace-independent PQ until OPQ re-rotates.
    FloatMatrix mix(d, d);
    for (idx_t r = 0; r < d; ++r)
        for (idx_t c = 0; c < d; ++c)
            mix.at(r, c) = static_cast<float>(
                rng.gaussian(0.0, r == c ? 1.0 : 0.45));
    FloatMatrix latent(n, d);
    for (idx_t i = 0; i < n; ++i)
        for (idx_t j = 0; j < d; ++j)
            latent.at(i, j) = static_cast<float>(
                rng.gaussian(0.0, j < d / 2 ? 1.0 : 0.15));
    return matmul(latent.view(), mix.view());
}

OptimizedProductQuantizer::Params
smallParams()
{
    OptimizedProductQuantizer::Params params;
    params.pq.num_subspaces = 4;
    params.pq.entries = 16;
    params.pq.max_iters = 10;
    params.opq_iters = 4;
    return params;
}

TEST(Opq, RotationIsOrthogonal)
{
    const auto data = correlatedData(400, 8, 1);
    OptimizedProductQuantizer opq;
    opq.train(data.view(), smallParams());
    EXPECT_TRUE(opq.trained());
    EXPECT_TRUE(isOrthonormal(opq.rotation().view(), 1e-2f));
}

TEST(Opq, RotationPreservesDistances)
{
    const auto data = correlatedData(100, 8, 2);
    OptimizedProductQuantizer opq;
    opq.train(data.view(), smallParams());
    const auto rotated = opq.rotate(data.view());
    for (idx_t i = 0; i < 20; ++i)
        for (idx_t j = i + 1; j < 20; ++j) {
            const float orig = l2Sqr(data.row(i), data.row(j), 8);
            const float rot = l2Sqr(rotated.row(i), rotated.row(j), 8);
            EXPECT_NEAR(rot, orig, 1e-2f * (1.0f + orig));
        }
}

TEST(Opq, ImprovesOverPlainPqOnCorrelatedData)
{
    const auto data = correlatedData(600, 8, 3);

    ProductQuantizer plain;
    PQParams pq_params = smallParams().pq;
    plain.train(data.view(), pq_params);
    const double plain_err = plain.reconstructionError(data.view());

    OptimizedProductQuantizer opq;
    opq.train(data.view(), smallParams());
    const double opq_err = opq.reconstructionError(data.view());

    EXPECT_LT(opq_err, plain_err * 1.02)
        << "OPQ " << opq_err << " vs PQ " << plain_err;
}

TEST(Opq, DecodeRoundTripsThroughRotation)
{
    const auto data = correlatedData(200, 8, 4);
    OptimizedProductQuantizer opq;
    opq.train(data.view(), smallParams());
    const auto codes = opq.encode(data.view());
    const auto rec = opq.decode(codes.row(0));
    ASSERT_EQ(rec.size(), 8u);
    // Reconstruction error bounded by the subspace quantisation error.
    const float err = l2Sqr(data.row(0), rec.data(), 8);
    EXPECT_LT(err, l2NormSqr(data.row(0), 8) + 1.0f);
}

TEST(Opq, EncodeMatchesRotatedPqEncode)
{
    const auto data = correlatedData(150, 8, 5);
    OptimizedProductQuantizer opq;
    opq.train(data.view(), smallParams());
    const auto direct = opq.encode(data.view());
    const auto rotated = opq.rotate(data.view());
    const auto via_pq = opq.pq().encode(rotated.view());
    EXPECT_EQ(direct.codes, via_pq.codes);
}

TEST(Opq, RejectsBadConfig)
{
    const auto data = correlatedData(50, 8, 6);
    OptimizedProductQuantizer opq;
    auto params = smallParams();
    params.opq_iters = 0;
    EXPECT_THROW(opq.train(data.view(), params), ConfigError);
}

} // namespace
} // namespace juno
