/** @file Tests for the bench harness (workload, reporter, sweep). */
#include <gtest/gtest.h>

#include "baseline/flat_index.h"
#include "baseline/ivfflat_index.h"
#include "common/logging.h"
#include "core/juno_index.h"
#include "harness/reporter.h"
#include "harness/sweep.h"
#include "harness/workload.h"

namespace juno {
namespace {

SyntheticSpec
tinySpec()
{
    SyntheticSpec spec;
    spec.kind = DatasetKind::kDeepLike;
    spec.num_points = 500;
    spec.num_queries = 10;
    spec.dim = 8;
    spec.seed = 111;
    return spec;
}

TEST(Workload, BuildsDatasetAndGroundTruth)
{
    Workload wl(tinySpec(), 20);
    EXPECT_EQ(wl.base().rows(), 500);
    EXPECT_EQ(wl.queries().rows(), 10);
    EXPECT_EQ(wl.groundTruth().k, 20);
    EXPECT_EQ(wl.metric(), Metric::kL2);
}

TEST(Workload, EvaluateFlatIsPerfect)
{
    Workload wl(tinySpec(), 20);
    FlatIndex flat(wl.metric(), wl.base());
    const auto point = evaluate(wl, flat, 20, 10);
    EXPECT_DOUBLE_EQ(point.recall1_at_k, 1.0);
    EXPECT_DOUBLE_EQ(point.recallm_at_k, 1.0);
    EXPECT_GT(point.qps, 0.0);
    EXPECT_EQ(point.index_name, "Flat-L2");
}

TEST(Workload, EvaluateWithoutRecallM)
{
    Workload wl(tinySpec(), 5);
    FlatIndex flat(wl.metric(), wl.base());
    const auto point = evaluate(wl, flat, 5);
    EXPECT_DOUBLE_EQ(point.recallm_at_k, 0.0); // not requested
}

TEST(TablePrinter, RendersAlignedTable)
{
    TablePrinter table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "22"});
    const auto out = table.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinter, CsvOutput)
{
    TablePrinter table({"a", "b"});
    table.addRow({"1", "2"});
    EXPECT_EQ(table.csv(), "a,b\n1,2\n");
}

TEST(TablePrinter, RejectsMismatchedRow)
{
    TablePrinter table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), ConfigError);
}

TEST(TablePrinter, NumFormatsCompactly)
{
    EXPECT_EQ(TablePrinter::num(1.0), "1");
    EXPECT_EQ(TablePrinter::num(0.5), "0.5");
}

TEST(Sweep, OperatingPointsFollowConfiguration)
{
    Workload wl(tinySpec(), 20);
    IvfFlatIndex::Params params;
    params.clusters = 8;
    params.nprobs = 1;
    IvfFlatIndex index(wl.metric(), wl.base(), params);
    const auto points = sweepOperatingPoints(
        wl, index, 20, 3,
        [&](int i) {
            index.setNprobs(1 + 3 * i);
            return "nprobs=" + std::to_string(1 + 3 * i);
        },
        0);
    ASSERT_EQ(points.size(), 3u);
    EXPECT_EQ(points[0].label, "nprobs=1");
    // Recall must be non-decreasing as nprobs grows.
    EXPECT_GE(points[2].recall, points[0].recall - 1e-9);
}

TEST(Sweep, ParetoFrontierRemovesDominated)
{
    std::vector<ParetoPoint> points{
        {0.5, 100.0, "a"}, {0.6, 200.0, "b"}, // b dominates a
        {0.9, 50.0, "c"},  {0.95, 10.0, "d"},
    };
    const auto frontier = paretoFrontier(points);
    ASSERT_EQ(frontier.size(), 3u);
    EXPECT_EQ(frontier[0].label, "b");
    EXPECT_EQ(frontier[1].label, "c");
    EXPECT_EQ(frontier[2].label, "d");
}

TEST(Workload, EvaluateJunoReportsStageTimers)
{
    Workload wl(tinySpec(), 20);
    JunoParams params = junoPresetH();
    params.clusters = 8;
    params.pq_entries = 16;
    params.nprobs = 4;
    params.density_grid = 20;
    params.policy.train_samples = 40;
    params.policy.ref_samples = 300;
    params.policy.contain_topk = 20;
    JunoIndex index(wl.metric(), wl.base(), params);
    const auto point = evaluate(wl, index, 20, 10);
    EXPECT_GT(point.qps, 0.0);
    EXPECT_GT(point.recall1_at_k, 0.0);
    EXPECT_GT(point.timers.seconds("rt_lut"), 0.0);
    EXPECT_GT(point.timers.seconds("scan"), 0.0);
    EXPECT_NE(point.index_name.find("JUNO-H"), std::string::npos);
}

TEST(Sweep, ParetoFrontierSortedByRecall)
{
    std::vector<ParetoPoint> points{
        {0.9, 10.0, "hi"}, {0.1, 1000.0, "lo"}, {0.5, 100.0, "mid"}};
    const auto frontier = paretoFrontier(points);
    for (std::size_t i = 1; i < frontier.size(); ++i)
        EXPECT_GE(frontier[i].recall, frontier[i - 1].recall);
}

} // namespace
} // namespace juno
