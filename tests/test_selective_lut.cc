/** @file Tests for the RT-based selective LUT construction. */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/distance.h"
#include "common/rng.h"
#include "core/selective_lut.h"
#include "dataset/synthetic.h"

namespace juno {
namespace {

/** Full JUNO offline stack over a small dataset. */
struct Fixture {
    Dataset ds;
    InvertedFileIndex ivf;
    ProductQuantizer pq;
    DensityMap density;
    ThresholdPolicy policy;
    JunoScene scene;
    rt::RtDevice device;
    std::unique_ptr<SelectiveLutBuilder> builder;

    explicit Fixture(Metric metric)
    {
        SyntheticSpec spec;
        spec.kind = metric == Metric::kL2 ? DatasetKind::kDeepLike
                                          : DatasetKind::kTtiLike;
        spec.num_points = 1200;
        spec.num_queries = 10;
        spec.dim = 8;
        spec.components = 10;
        spec.seed = 66;
        ds = makeDataset(spec);

        InvertedFileIndex::Params ivf_params;
        ivf_params.clusters = 12;
        ivf.build(ds.base.view(), ivf_params);

        FloatMatrix residuals(ds.base.rows(), ds.base.cols());
        for (idx_t p = 0; p < ds.base.rows(); ++p)
            ivf.residual(ds.base.row(p), ivf.label(p), residuals.row(p));
        PQParams pq_params;
        pq_params.num_subspaces = 4;
        pq_params.entries = 16;
        pq.train(residuals.view(), pq_params);

        const FloatMatrixView domain =
            metric == Metric::kL2 ? residuals.view() : ds.base.view();
        density.build(domain, 4, 30);
        ThresholdPolicy::Params tp;
        tp.train_samples = 80;
        tp.ref_samples = 600;
        tp.contain_topk = 40;
        policy.train(metric, domain, 4, density, tp);

        scene.build(metric, pq, policy);
        builder = std::make_unique<SelectiveLutBuilder>(scene, policy, ivf,
                                                        device);
    }
};

TEST(SelectiveLut, L2HitsMatchBruteForceSelection)
{
    Fixture fx(Metric::kL2);
    SelectiveLutParams params;
    const float *q = fx.ds.queries.row(0);
    const auto probes = fx.ivf.probe(Metric::kL2, q, 4);
    const auto lut = fx.builder->build(q, probes, params);

    ASSERT_EQ(lut.hits.size(), 4u);
    EXPECT_FALSE(lut.shared_across_probes);

    std::vector<float> residual(8);
    for (std::size_t p = 0; p < probes.size(); ++p) {
        fx.ivf.residual(q, static_cast<cluster_t>(probes[p].id),
                        residual.data());
        for (int s = 0; s < 4; ++s) {
            const float qx = residual[static_cast<std::size_t>(2 * s)];
            const float qy = residual[static_cast<std::size_t>(2 * s + 1)];
            const double thr = fx.policy.threshold(s, qx, qy);

            std::set<entry_t> expected;
            for (entry_t e = 0; e < 16; ++e) {
                const float *ec = fx.pq.entry(s, e);
                const double dx = ec[0] - qx, dy = ec[1] - qy;
                if (std::sqrt(dx * dx + dy * dy) <= thr * (1.0 - 1e-5))
                    expected.insert(e);
            }
            std::set<entry_t> got;
            for (const auto &hit : lut.hits[p][static_cast<std::size_t>(s)])
                got.insert(hit.entry);
            // All strictly-inside entries must appear; boundary entries
            // may differ by FP rounding.
            for (entry_t e : expected)
                EXPECT_TRUE(got.count(e))
                    << "probe " << p << " subspace " << s << " entry " << e;
        }
    }
}

TEST(SelectiveLut, L2ValuesAreSquaredSubspaceDistances)
{
    Fixture fx(Metric::kL2);
    const float *q = fx.ds.queries.row(1);
    const auto probes = fx.ivf.probe(Metric::kL2, q, 2);
    const auto lut = fx.builder->build(q, probes, {});

    std::vector<float> residual(8);
    for (std::size_t p = 0; p < probes.size(); ++p) {
        fx.ivf.residual(q, static_cast<cluster_t>(probes[p].id),
                        residual.data());
        for (int s = 0; s < 4; ++s) {
            for (const auto &hit :
                 lut.hits[p][static_cast<std::size_t>(s)]) {
                const float *ec = fx.pq.entry(s, hit.entry);
                const float dx =
                    ec[0] - residual[static_cast<std::size_t>(2 * s)];
                const float dy =
                    ec[1] - residual[static_cast<std::size_t>(2 * s + 1)];
                EXPECT_NEAR(hit.value, dx * dx + dy * dy,
                            5e-3f * (1.0f + dx * dx + dy * dy));
            }
        }
    }
}

TEST(SelectiveLut, IpSharesLutAcrossProbes)
{
    Fixture fx(Metric::kInnerProduct);
    const float *q = fx.ds.queries.row(0);
    const auto probes = fx.ivf.probe(Metric::kInnerProduct, q, 4);
    const auto lut = fx.builder->build(q, probes, {});
    EXPECT_TRUE(lut.shared_across_probes);
    EXPECT_EQ(lut.hits.size(), 1u);
    EXPECT_EQ(lut.base.size(), 4u);
    // The base term must equal IP(q, centroid).
    for (std::size_t p = 0; p < probes.size(); ++p)
        EXPECT_NEAR(lut.base[p],
                    innerProduct(q,
                                 fx.ivf.centroid(static_cast<cluster_t>(
                                     probes[p].id)),
                                 8),
                    1e-3f);
}

TEST(SelectiveLut, IpValuesAreSubspaceInnerProducts)
{
    Fixture fx(Metric::kInnerProduct);
    const float *q = fx.ds.queries.row(2);
    const auto probes = fx.ivf.probe(Metric::kInnerProduct, q, 2);
    const auto lut = fx.builder->build(q, probes, {});
    for (int s = 0; s < 4; ++s) {
        for (const auto &hit : lut.hits[0][static_cast<std::size_t>(s)]) {
            const float *ec = fx.pq.entry(s, hit.entry);
            const float ip = ec[0] * q[2 * s] + ec[1] * q[2 * s + 1];
            EXPECT_NEAR(hit.value, ip, 5e-2f * (1.0f + std::abs(ip)));
        }
    }
}

TEST(SelectiveLut, SmallerScaleNeverAddsHits)
{
    Fixture fx(Metric::kL2);
    const float *q = fx.ds.queries.row(3);
    const auto probes = fx.ivf.probe(Metric::kL2, q, 3);
    SelectiveLutParams full, half;
    full.threshold_scale = 1.0;
    half.threshold_scale = 0.5;
    const auto lut_full = fx.builder->build(q, probes, full);
    const auto lut_half = fx.builder->build(q, probes, half);
    for (std::size_t p = 0; p < probes.size(); ++p) {
        for (int s = 0; s < 4; ++s) {
            std::set<entry_t> full_set, half_set;
            for (const auto &h :
                 lut_full.hits[p][static_cast<std::size_t>(s)])
                full_set.insert(h.entry);
            for (const auto &h :
                 lut_half.hits[p][static_cast<std::size_t>(s)])
                half_set.insert(h.entry);
            for (entry_t e : half_set)
                EXPECT_TRUE(full_set.count(e));
            EXPECT_LE(half_set.size(), full_set.size());
        }
    }
}

TEST(SelectiveLut, InnerFlagImpliesTighterDistance)
{
    Fixture fx(Metric::kL2);
    const float *q = fx.ds.queries.row(4);
    const auto probes = fx.ivf.probe(Metric::kL2, q, 3);
    SelectiveLutParams params;
    params.inner_gate = true;
    const auto lut = fx.builder->build(q, probes, params);
    for (std::size_t p = 0; p < probes.size(); ++p) {
        for (int s = 0; s < 4; ++s) {
            float max_inner = -1.0f, min_outer = 1e30f;
            for (const auto &h :
                 lut.hits[p][static_cast<std::size_t>(s)]) {
                if (h.inner)
                    max_inner = std::max(max_inner, h.value);
                else
                    min_outer = std::min(min_outer, h.value);
            }
            // Inner hits are all at most as far as any outer-only hit.
            if (max_inner >= 0.0f && min_outer < 1e30f) {
                EXPECT_LE(max_inner, min_outer + 1e-4f);
            }
        }
    }
}

TEST(SelectiveLut, MissValueIsGateBoundaryL2)
{
    Fixture fx(Metric::kL2);
    const float *q = fx.ds.queries.row(5);
    const auto probes = fx.ivf.probe(Metric::kL2, q, 2);
    SelectiveLutParams params;
    params.miss_penalty = 1.0;
    const auto lut = fx.builder->build(q, probes, params);
    std::vector<float> residual(8);
    for (std::size_t p = 0; p < probes.size(); ++p) {
        fx.ivf.residual(q, static_cast<cluster_t>(probes[p].id),
                        residual.data());
        for (int s = 0; s < 4; ++s) {
            const double thr = fx.policy.threshold(
                s, residual[static_cast<std::size_t>(2 * s)],
                residual[static_cast<std::size_t>(2 * s + 1)]);
            EXPECT_NEAR(lut.missFor(p, s), thr * thr, 1e-4 * thr * thr);
        }
    }
}

TEST(SelectiveLut, SparsitySavesWorkVsDenseLut)
{
    // The headline claim: far fewer selected entries than E per
    // subspace on clustered data.
    Fixture fx(Metric::kL2);
    const float *q = fx.ds.queries.row(6);
    const auto probes = fx.ivf.probe(Metric::kL2, q, 4);
    const auto lut = fx.builder->build(q, probes, {});
    std::size_t selected = 0, cells = 0;
    for (std::size_t p = 0; p < lut.hits.size(); ++p)
        for (int s = 0; s < 4; ++s) {
            selected += lut.hits[p][static_cast<std::size_t>(s)].size();
            cells += 16;
        }
    EXPECT_LT(static_cast<double>(selected) / static_cast<double>(cells),
              0.8);
}

} // namespace
} // namespace juno
