/** @file Tests for the sparse distance-calculation stage. */
#include <gtest/gtest.h>

#include <cmath>

#include "common/distance.h"
#include "common/simd.h"
#include "core/distance_calc.h"
#include "core/selective_lut.h"
#include "dataset/synthetic.h"

namespace juno {
namespace {

/** Offline stack shared across the tests in this file. */
struct Fixture {
    Dataset ds;
    InvertedFileIndex ivf;
    ProductQuantizer pq;
    PQCodes codes;
    InterestIndex interest;
    DensityMap density;
    ThresholdPolicy policy;
    JunoScene scene;
    InterleavedLists interleaved;
    rt::RtDevice device;
    std::unique_ptr<SelectiveLutBuilder> builder;
    std::unique_ptr<DistanceCalculator> calc;

    Fixture()
    {
        SyntheticSpec spec;
        spec.kind = DatasetKind::kDeepLike;
        spec.num_points = 1500;
        spec.num_queries = 8;
        spec.dim = 8;
        spec.components = 12;
        spec.seed = 77;
        ds = makeDataset(spec);

        InvertedFileIndex::Params ivf_params;
        ivf_params.clusters = 12;
        ivf.build(ds.base.view(), ivf_params);

        FloatMatrix residuals(ds.base.rows(), ds.base.cols());
        for (idx_t p = 0; p < ds.base.rows(); ++p)
            ivf.residual(ds.base.row(p), ivf.label(p), residuals.row(p));
        PQParams pq_params;
        pq_params.num_subspaces = 4;
        pq_params.entries = 16;
        pq.train(residuals.view(), pq_params);
        codes = pq.encode(residuals.view());
        interest.build(ivf, codes, 16);

        density.build(residuals.view(), 4, 30);
        ThresholdPolicy::Params tp;
        tp.train_samples = 80;
        tp.ref_samples = 800;
        tp.contain_topk = 50;
        policy.train(Metric::kL2, residuals.view(), 4, density, tp);
        scene.build(Metric::kL2, pq, policy);
        builder = std::make_unique<SelectiveLutBuilder>(scene, policy, ivf,
                                                        device);
        interleaved.build(ivf.lists(), codes, 16);
        calc = std::make_unique<DistanceCalculator>(ivf, interest,
                                                    &interleaved);
    }
};

TEST(DistanceCalc, SearchModeNames)
{
    EXPECT_STREQ(searchModeName(SearchMode::kExactDistance), "JUNO-H");
    EXPECT_STREQ(searchModeName(SearchMode::kRewardPenalty), "JUNO-M");
    EXPECT_STREQ(searchModeName(SearchMode::kHitCount), "JUNO-L");
}

TEST(DistanceCalc, ExactModeScoresMatchSparseAccumulation)
{
    Fixture fx;
    const float *q = fx.ds.queries.row(0);
    const auto probes = fx.ivf.probe(Metric::kL2, q, 3);
    const auto lut = fx.builder->build(q, probes, {});
    const auto result = fx.calc->run(Metric::kL2, SearchMode::kExactDistance,
                                     probes, lut, 20);
    ASSERT_FALSE(result.empty());

    // Recompute one result's score by hand from the sparse LUT.
    const idx_t pid = result[0].id;
    const cluster_t c = fx.ivf.label(pid);
    std::size_t probe_ord = probes.size();
    for (std::size_t p = 0; p < probes.size(); ++p)
        if (probes[p].id == c)
            probe_ord = p;
    ASSERT_LT(probe_ord, probes.size());

    float expect = 0.0f;
    for (int s = 0; s < 4; ++s) {
        const entry_t code = fx.codes.at(pid, s);
        bool found = false;
        for (const auto &hit :
             lut.hits[probe_ord][static_cast<std::size_t>(s)]) {
            if (hit.entry == code) {
                expect += hit.value;
                found = true;
                break;
            }
        }
        if (!found)
            expect += lut.missFor(probe_ord, s);
    }
    EXPECT_NEAR(result[0].score, expect, 1e-3f * (1.0f + expect));
}

TEST(DistanceCalc, ResultsSortedByMode)
{
    Fixture fx;
    const float *q = fx.ds.queries.row(1);
    const auto probes = fx.ivf.probe(Metric::kL2, q, 3);
    SelectiveLutParams lp;
    lp.inner_gate = true;
    const auto lut = fx.builder->build(q, probes, lp);

    const auto exact = fx.calc->run(Metric::kL2,
                                    SearchMode::kExactDistance, probes, lut,
                                    10);
    for (std::size_t i = 1; i < exact.size(); ++i)
        EXPECT_LE(exact[i - 1].score, exact[i].score);

    const auto counts = fx.calc->run(Metric::kL2, SearchMode::kHitCount,
                                     probes, lut, 10);
    for (std::size_t i = 1; i < counts.size(); ++i)
        EXPECT_GE(counts[i - 1].score, counts[i].score);
}

TEST(DistanceCalc, HitCountBoundedBySubspaces)
{
    Fixture fx;
    const float *q = fx.ds.queries.row(2);
    const auto probes = fx.ivf.probe(Metric::kL2, q, 4);
    const auto lut = fx.builder->build(q, probes, {});
    const auto counts = fx.calc->run(Metric::kL2, SearchMode::kHitCount,
                                     probes, lut, 50);
    for (const auto &nb : counts) {
        EXPECT_GE(nb.score, 1.0f);
        EXPECT_LE(nb.score, 4.0f);
    }
}

TEST(DistanceCalc, RewardPenaltyWithinBounds)
{
    Fixture fx;
    const float *q = fx.ds.queries.row(3);
    const auto probes = fx.ivf.probe(Metric::kL2, q, 4);
    SelectiveLutParams lp;
    lp.inner_gate = true;
    const auto lut = fx.builder->build(q, probes, lp);
    const auto scores = fx.calc->run(Metric::kL2,
                                     SearchMode::kRewardPenalty, probes,
                                     lut, 50);
    for (const auto &nb : scores) {
        EXPECT_GE(nb.score, -4.0f);
        EXPECT_LE(nb.score, 4.0f);
    }
}

TEST(DistanceCalc, TrueNearestNeighborRanksHighOnHitCount)
{
    // Property behind Fig. 11(b): the true NN's entries are close to
    // the query projections, so its hit count should land near the top.
    Fixture fx;
    int wins = 0, trials = 0;
    for (idx_t qi = 0; qi < fx.ds.queries.rows(); ++qi) {
        const float *q = fx.ds.queries.row(qi);
        const auto probes = fx.ivf.probe(Metric::kL2, q, 6);
        const auto lut = fx.builder->build(q, probes, {});
        const auto counts = fx.calc->run(Metric::kL2, SearchMode::kHitCount,
                                         probes, lut, 100);
        // Exact NN via brute force.
        idx_t best = -1;
        float best_d = 1e30f;
        for (idx_t p = 0; p < fx.ds.base.rows(); ++p) {
            const float d = l2Sqr(q, fx.ds.base.row(p), 8);
            if (d < best_d) {
                best_d = d;
                best = p;
            }
        }
        for (const auto &nb : counts)
            if (nb.id == best) {
                ++wins;
                break;
            }
        ++trials;
    }
    EXPECT_GE(static_cast<double>(wins) / trials, 0.5);
}

TEST(DistanceCalc, ScoreClusterExposesPerClusterScores)
{
    Fixture fx;
    const float *q = fx.ds.queries.row(4);
    const auto probes = fx.ivf.probe(Metric::kL2, q, 2);
    const auto lut = fx.builder->build(q, probes, {});
    const auto scores = fx.calc->scoreCluster(
        Metric::kL2, SearchMode::kExactDistance, probes, 0, lut);
    const cluster_t c = static_cast<cluster_t>(probes[0].id);
    for (const auto &nb : scores)
        EXPECT_EQ(fx.ivf.label(nb.id), c);
}

TEST(DistanceCalc, DenseInterleavedPathBitwiseEqualsSparseWalk)
{
    // The dense path expands the sparse hits into a delta LUT and
    // streams the interleaved codes; it must reproduce the sparse
    // interest-index walk bit for bit (same candidates, same scores,
    // same order) in every mode, at every dispatch level.
    Fixture fx;
    struct LevelGuard {
        simd::Level saved = simd::level();
        ~LevelGuard() { simd::setLevel(saved); }
    } guard;
    std::vector<simd::Level> levels = {simd::Level::kScalar};
    if (simd::supported(simd::Level::kAvx2))
        levels.push_back(simd::Level::kAvx2);
    if (simd::supported(simd::Level::kAvx512))
        levels.push_back(simd::Level::kAvx512);

    for (idx_t qi = 0; qi < 4; ++qi) {
        const float *q = fx.ds.queries.row(qi);
        const auto probes = fx.ivf.probe(Metric::kL2, q, 4);
        SelectiveLutParams lp;
        lp.inner_gate = true;
        const auto lut = fx.builder->build(q, probes, lp);
        for (SearchMode mode :
             {SearchMode::kExactDistance, SearchMode::kHitCount,
              SearchMode::kRewardPenalty}) {
            fx.calc->setDenseThreshold(2.0); // never dense
            const auto sparse =
                fx.calc->run(Metric::kL2, mode, probes, lut, 40);
            for (simd::Level level : levels) {
                ASSERT_TRUE(simd::setLevel(level));
                fx.calc->setDenseThreshold(0.0); // always dense
                const auto dense =
                    fx.calc->run(Metric::kL2, mode, probes, lut, 40);
                ASSERT_EQ(sparse.size(), dense.size())
                    << "mode=" << searchModeName(mode) << " level="
                    << simd::levelName(level);
                for (std::size_t i = 0; i < sparse.size(); ++i)
                    EXPECT_EQ(sparse[i], dense[i])
                        << "mode=" << searchModeName(mode)
                        << " level=" << simd::levelName(level)
                        << " i=" << i;
            }
            fx.calc->setDenseThreshold(0.5);
        }
    }
}

TEST(DistanceCalc, RejectsBadK)
{
    Fixture fx;
    const float *q = fx.ds.queries.row(5);
    const auto probes = fx.ivf.probe(Metric::kL2, q, 2);
    const auto lut = fx.builder->build(q, probes, {});
    EXPECT_THROW(fx.calc->run(Metric::kL2, SearchMode::kExactDistance,
                              probes, lut, 0),
                 ConfigError);
}

} // namespace
} // namespace juno
