/** @file Unit tests for the matrix containers. */
#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/matrix.h"

namespace juno {
namespace {

TEST(FloatMatrix, ConstructsWithFill)
{
    FloatMatrix m(3, 4, 2.5f);
    EXPECT_EQ(m.rows(), 3);
    EXPECT_EQ(m.cols(), 4);
    for (idx_t r = 0; r < 3; ++r)
        for (idx_t c = 0; c < 4; ++c)
            EXPECT_FLOAT_EQ(m.at(r, c), 2.5f);
}

TEST(FloatMatrix, DefaultIsEmpty)
{
    FloatMatrix m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.rows(), 0);
}

TEST(FloatMatrix, RowPointersAreContiguous)
{
    FloatMatrix m(2, 3);
    EXPECT_EQ(m.row(1), m.row(0) + 3);
}

TEST(FloatMatrix, MutableAccess)
{
    FloatMatrix m(2, 2);
    m.at(1, 1) = 9.0f;
    EXPECT_FLOAT_EQ(m.at(1, 1), 9.0f);
}

TEST(FloatMatrix, ReshapePreservesData)
{
    FloatMatrix m(2, 6);
    for (idx_t i = 0; i < 12; ++i)
        m.data()[i] = static_cast<float>(i);
    m.reshape(3, 4);
    EXPECT_EQ(m.rows(), 3);
    EXPECT_EQ(m.cols(), 4);
    EXPECT_FLOAT_EQ(m.at(2, 3), 11.0f);
}

TEST(FloatMatrix, ReshapeRejectsSizeChange)
{
    FloatMatrix m(2, 6);
    EXPECT_THROW(m.reshape(3, 5), ConfigError);
}

TEST(FloatMatrixView, ViewsOwnStorage)
{
    FloatMatrix m(2, 2);
    m.at(0, 1) = 4.0f;
    FloatMatrixView v = m.view();
    EXPECT_EQ(v.rows(), 2);
    EXPECT_FLOAT_EQ(v.at(0, 1), 4.0f);
}

TEST(FloatMatrixView, SliceSelectsRows)
{
    FloatMatrix m(4, 2);
    for (idx_t r = 0; r < 4; ++r)
        m.at(r, 0) = static_cast<float>(r);
    const auto slice = m.view().slice(1, 2);
    EXPECT_EQ(slice.rows(), 2);
    EXPECT_FLOAT_EQ(slice.at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(slice.at(1, 0), 2.0f);
}

TEST(FloatMatrixView, ImplicitConversion)
{
    FloatMatrix m(1, 1, 3.0f);
    FloatMatrixView v = m;
    EXPECT_FLOAT_EQ(v.at(0, 0), 3.0f);
}

#if JUNO_DCHECK_IS_ON
// The accessor bounds checks are JUNO_DCHECK — active in Debug and
// every sanitizer preset (JUNO_FORCE_DCHECKS), compiled out of the
// Release hot path. These death tests pin the active half of that
// contract; the compiled-out half is what bench_micro_kernels guards.
TEST(FloatMatrixDeathTest, OutOfBoundsRowAborts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    FloatMatrix m(3, 4);
    EXPECT_DEATH(m.row(3), "row 3 of 3");
    EXPECT_DEATH(m.row(-1), "row -1 of 3");
}

TEST(FloatMatrixDeathTest, ViewOutOfBoundsAborts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    FloatMatrix m(3, 4);
    const FloatMatrixView v = m;
    EXPECT_DEATH(v.row(5), "row 5 of 3");
    EXPECT_DEATH(v.at(0, 4), "col 4 of 4");
    EXPECT_DEATH(v.slice(2, 2), "bad slice");
}
#endif // JUNO_DCHECK_IS_ON

} // namespace
} // namespace juno
