/** @file Tests for the versioned snapshot container. */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "registry/snapshot.h"

namespace juno {
namespace {

std::string
tempPath(const std::string &name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

std::vector<char>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/** A snapshot with one stream and one blob section. */
std::string
writeSample(const std::string &name)
{
    const auto path = tempPath(name);
    SnapshotWriter writer(path, "flat");
    Writer &meta = writer.section("meta");
    meta.writePod<std::int32_t>(42);
    meta.writeString("hello");
    meta.writeVector(std::vector<float>{1.0f, 2.0f, 3.0f});
    const std::vector<std::uint16_t> payload = {7, 8, 9, 10};
    writer.addBlob("codes", payload.data(),
                   payload.size() * sizeof(std::uint16_t));
    writer.finish();
    return path;
}

void
expectSampleReads(SnapshotReader &reader)
{
    EXPECT_EQ(reader.spec(), "flat");
    EXPECT_TRUE(reader.has("meta"));
    EXPECT_TRUE(reader.has("codes"));
    EXPECT_FALSE(reader.has("nope"));
    auto meta = reader.stream("meta");
    EXPECT_EQ(meta.readPod<std::int32_t>(), 42);
    EXPECT_EQ(meta.readString(), "hello");
    const auto vec = meta.readVector<float>();
    ASSERT_EQ(vec.size(), 3u);
    EXPECT_FLOAT_EQ(vec[2], 3.0f);
    EXPECT_EQ(meta.remaining(), 0u);

    const auto blob = reader.blob("codes");
    const auto codes = blob.array<std::uint16_t>(4, "codes");
    EXPECT_EQ(codes[0], 7);
    EXPECT_EQ(codes[3], 10);
    // Section payloads start on 64-byte file offsets, so zero-copy
    // views out of the (page-aligned) mapping are SIMD/cache-line
    // aligned. Buffered copies land wherever the heap puts them.
    if (reader.mapped()) {
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(blob.data) % 64, 0u);
    }
}

TEST(Snapshot, RoundTripsBuffered)
{
    const auto path = writeSample("snap_buffered.juno");
    SnapshotOptions options;
    options.use_mmap = false;
    SnapshotReader reader(path, options);
    EXPECT_FALSE(reader.mapped());
    expectSampleReads(reader);
    std::remove(path.c_str());
}

TEST(Snapshot, RoundTripsMapped)
{
    const auto path = writeSample("snap_mapped.juno");
    SnapshotReader reader(path); // mmap by default
    expectSampleReads(reader);
    std::remove(path.c_str());
}

TEST(Snapshot, BlobOutlivesReader)
{
    const auto path = writeSample("snap_keepalive.juno");
    SnapshotReader::Blob blob;
    {
        SnapshotReader reader(path);
        blob = reader.blob("codes");
    } // reader gone; the mapping must stay alive through the keepalive
    const auto codes = blob.array<std::uint16_t>(4, "codes");
    EXPECT_EQ(codes[1], 8);
    std::remove(path.c_str());
}

TEST(Snapshot, SizeMismatchedViewsRejected)
{
    const auto path = writeSample("snap_misview.juno");
    SnapshotReader reader(path);
    const auto blob = reader.blob("codes");
    EXPECT_THROW(blob.array<std::uint16_t>(5, "codes"), ConfigError);
    EXPECT_THROW(blob.matrix(2, 3, "codes"), ConfigError);
    std::remove(path.c_str());
}

TEST(Snapshot, MissingFileAndSectionsRejected)
{
    EXPECT_THROW(SnapshotReader("/no/such/snapshot.juno"), ConfigError);
    const auto path = writeSample("snap_missing.juno");
    SnapshotReader reader(path);
    EXPECT_THROW(reader.stream("nope"), ConfigError);
    EXPECT_THROW(reader.blob("nope"), ConfigError);
    std::remove(path.c_str());
}

TEST(Snapshot, DuplicateSectionsRejectedAtWrite)
{
    const auto path = tempPath("snap_dup.juno");
    SnapshotWriter writer(path, "flat");
    writer.section("meta").writePod<int>(1);
    EXPECT_THROW(writer.section("meta"), ConfigError);
    std::remove(path.c_str());
}

TEST(Snapshot, ForeignMagicRejected)
{
    const auto path = tempPath("snap_magic.juno");
    std::vector<char> bytes(128, 'x');
    writeAll(path, bytes);
    EXPECT_THROW(SnapshotReader{path}, ConfigError);
    std::remove(path.c_str());
}

/**
 * Fuzz-style robustness: every truncation of a valid snapshot must
 * fail with ConfigError — never a crash, hang or huge allocation.
 */
TEST(Snapshot, EveryTruncationRejected)
{
    const auto path = writeSample("snap_trunc_src.juno");
    const auto bytes = readAll(path);
    ASSERT_GT(bytes.size(), 64u);
    const auto trunc_path = tempPath("snap_trunc.juno");
    // Step 7 keeps the loop fast while still covering every region
    // (header, sections, TOC) plus the exact boundary cases.
    for (std::size_t len = 0; len < bytes.size();
         len += (len < 72 || len + 8 > bytes.size() ? 1 : 7)) {
        writeAll(trunc_path,
                 std::vector<char>(bytes.begin(),
                                   bytes.begin() +
                                       static_cast<std::ptrdiff_t>(len)));
        for (const bool mmap : {false, true}) {
            SnapshotOptions options;
            options.use_mmap = mmap;
            EXPECT_THROW(SnapshotReader(trunc_path, options),
                         ConfigError)
                << "len=" << len << " mmap=" << mmap;
        }
    }
    std::remove(path.c_str());
    std::remove(trunc_path.c_str());
}

/**
 * Bit flips either surface as ConfigError (checksums, bound checks)
 * or land in padding and change nothing; they must never crash. In
 * buffered mode a flip inside any section payload is always caught.
 */
TEST(Snapshot, ByteFlipsNeverCrash)
{
    const auto path = writeSample("snap_flip_src.juno");
    const auto bytes = readAll(path);
    const auto flip_path = tempPath("snap_flip.juno");
    SnapshotOptions buffered;
    buffered.use_mmap = false;
    for (std::size_t at = 0; at < bytes.size(); at += 3) {
        auto corrupt = bytes;
        corrupt[at] = static_cast<char>(corrupt[at] ^ 0x5A);
        writeAll(flip_path, corrupt);
        try {
            SnapshotReader reader(flip_path, buffered);
            auto meta = reader.stream("meta");
            (void)meta.readPod<std::int32_t>();
            (void)reader.blob("codes");
        } catch (const ConfigError &) {
            // expected for most offsets
        }
    }
    // A flip inside the first section's payload (the spec string at
    // offset 64) must be caught, not silently served.
    auto corrupt = bytes;
    corrupt[64] = static_cast<char>(corrupt[64] ^ 0x01);
    writeAll(flip_path, corrupt);
    EXPECT_THROW(SnapshotReader(flip_path, buffered), ConfigError);
    std::remove(path.c_str());
    std::remove(flip_path.c_str());
}

TEST(Snapshot, Crc32MatchesKnownVector)
{
    // The IEEE 802.3 check value for "123456789".
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(crc32("", 0), 0u);
}

} // namespace
} // namespace juno
