/** @file Tests for the lossless RT search mode (paper Sec. 6.5). */
#include <gtest/gtest.h>

#include "baseline/flat_index.h"
#include "common/logging.h"
#include "core/rt_exact_index.h"
#include "dataset/synthetic.h"

namespace juno {
namespace {

Dataset
smallData(idx_t n = 400, idx_t dim = 8)
{
    SyntheticSpec spec;
    spec.kind = DatasetKind::kDeepLike;
    spec.num_points = n;
    spec.num_queries = 12;
    spec.dim = dim;
    spec.components = 6;
    spec.seed = 777;
    return makeDataset(spec);
}

TEST(RtExact, MatchesFlatExactly)
{
    const auto ds = smallData();
    RtExactIndex rt_index(ds.base.view());
    FlatIndex flat(Metric::kL2, ds.base.view());

    const auto rt_results = rt_index.search(ds.queries.view(), 10);
    const auto flat_results = flat.search(ds.queries.view(), 10);
    for (std::size_t q = 0; q < rt_results.size(); ++q) {
        ASSERT_EQ(rt_results[q].size(), flat_results[q].size());
        for (std::size_t i = 0; i < rt_results[q].size(); ++i) {
            EXPECT_EQ(rt_results[q][i].id, flat_results[q][i].id)
                << "query " << q << " rank " << i;
            EXPECT_NEAR(rt_results[q][i].score, flat_results[q][i].score,
                        2e-2f * (1.0f + flat_results[q][i].score));
        }
    }
}

TEST(RtExact, SelfQueryScoresNearZero)
{
    const auto ds = smallData(200);
    RtExactIndex index(ds.base.view());
    const auto results = index.search(ds.base.view().slice(0, 5), 1);
    for (std::size_t q = 0; q < results.size(); ++q) {
        ASSERT_FALSE(results[q].empty());
        EXPECT_EQ(results[q][0].id, static_cast<idx_t>(q));
        EXPECT_NEAR(results[q][0].score, 0.0f, 1e-3f);
    }
}

TEST(RtExact, EveryPointHitInEverySubspace)
{
    // Traversal must report exactly N * S hits per query.
    const auto ds = smallData(150, 6);
    RtExactIndex index(ds.base.view());
    index.search(ds.queries.view().slice(0, 1), 5);
    EXPECT_EQ(index.rtStats().hits, 150u * 3u);
}

TEST(RtExact, RejectsOddDimension)
{
    SyntheticSpec spec;
    spec.kind = DatasetKind::kUniform;
    spec.num_points = 50;
    spec.dim = 7;
    const auto ds = makeDataset(spec);
    EXPECT_THROW(RtExactIndex(ds.base.view()), ConfigError);
}

TEST(RtExact, StageTimerRecorded)
{
    const auto ds = smallData(100);
    RtExactIndex index(ds.base.view());
    index.search(ds.queries.view(), 3);
    EXPECT_GT(index.stageTimers().seconds("rt_exact"), 0.0);
}

} // namespace
} // namespace juno
