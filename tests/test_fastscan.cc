/**
 * @file
 * Tests of the list-resident interleaved PQ layout and the 4-bit
 * fast-scan path:
 *
 *  - PQ4 (entries == 16) train/encode/decode round-trip;
 *  - the interleaved layout reproduces the row-major codes (both
 *    planes) and the interleaved scan is bitwise equal to the legacy
 *    id-gather scan in every dispatch table;
 *  - the fast-scan kernel's quantised sums match a naive nibble
 *    reference bit for bit in every table, and the reconstructed
 *    scores respect the documented error bound;
 *  - an IvfPqIndex with the interleaved layout returns ids bitwise
 *    identical to the legacy-gather index under JUNO_SIMD=scalar;
 *  - the quantised-LUT path holds recall parity within +-0.1% of the
 *    scalar float path at a fig12-style operating point across all
 *    supported kernel tiers.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "baseline/ivfpq_index.h"
#include "common/distance.h"
#include "common/rng.h"
#include "common/simd.h"
#include "dataset/ground_truth.h"
#include "dataset/recall.h"
#include "dataset/synthetic.h"
#include "quant/interleaved_codes.h"
#include "quant/product_quantizer.h"

namespace juno {
namespace {

/** Restores the active dispatch level when a test scope ends. */
struct LevelGuard {
    simd::Level saved = simd::level();
    ~LevelGuard() { simd::setLevel(saved); }
};

std::vector<simd::Level>
supportedLevels()
{
    std::vector<simd::Level> levels = {simd::Level::kScalar};
    if (simd::supported(simd::Level::kAvx2))
        levels.push_back(simd::Level::kAvx2);
    if (simd::supported(simd::Level::kAvx512))
        levels.push_back(simd::Level::kAvx512);
    return levels;
}

FloatMatrix
randomMatrix(Rng &rng, idx_t rows, idx_t cols)
{
    FloatMatrix m(rows, cols);
    for (idx_t i = 0; i < rows; ++i)
        for (idx_t j = 0; j < cols; ++j)
            m.at(i, j) = rng.uniform(-1.0f, 1.0f);
    return m;
}

TEST(FastScan, Pq4TrainEncodeDecodeRoundTrip)
{
    Rng rng(91);
    const idx_t n = 400, dim = 16;
    const auto vectors = randomMatrix(rng, n, dim);

    PQParams params;
    params.num_subspaces = 8;
    params.entries = 16; // PQ4
    params.seed = 5;
    ProductQuantizer pq;
    pq.train(vectors.view(), params);
    ASSERT_TRUE(pq.trained());
    EXPECT_EQ(pq.entries(), 16);

    const PQCodes codes = pq.encode(vectors.view());
    ASSERT_EQ(codes.num_points, n);
    for (idx_t p = 0; p < n; ++p)
        for (int s = 0; s < codes.num_subspaces; ++s)
            ASSERT_LT(codes.at(p, s), 16) << "PQ4 code out of range";

    // Decode must return each point's nearest codebook entries, so
    // re-encoding the reconstruction is a fixed point.
    for (idx_t p = 0; p < std::min<idx_t>(n, 32); ++p) {
        const auto rec = pq.decode(codes.row(p));
        ASSERT_EQ(rec.size(), static_cast<std::size_t>(dim));
        std::vector<entry_t> again(
            static_cast<std::size_t>(codes.num_subspaces));
        pq.encodeOne(rec.data(), again.data());
        for (int s = 0; s < codes.num_subspaces; ++s)
            EXPECT_EQ(again[static_cast<std::size_t>(s)],
                      codes.at(p, s));
    }

    // 4-bit codebooks are coarse but must still beat the zero-vector
    // predictor on centered data.
    double base_energy = 0.0;
    for (idx_t p = 0; p < n; ++p)
        base_energy += l2NormSqr(vectors.row(p), dim);
    EXPECT_LT(pq.reconstructionError(vectors.view()),
              base_energy / static_cast<double>(n));
}

/** Random codes partitioned into random lists, plus a scan LUT. */
struct ScanFixture {
    PQCodes codes;
    std::vector<std::vector<idx_t>> lists;
    InterleavedLists interleaved;
    FloatMatrix lut;
    int subspaces;
    int entries;

    ScanFixture(int subspaces_in, int entries_in, idx_t num_points,
                int num_lists, std::uint64_t seed)
        : subspaces(subspaces_in), entries(entries_in)
    {
        Rng rng(seed);
        codes.num_points = num_points;
        codes.num_subspaces = subspaces;
        codes.codes.resize(static_cast<std::size_t>(num_points) *
                           static_cast<std::size_t>(subspaces));
        for (auto &c : codes.codes)
            c = static_cast<entry_t>(
                rng.uniform() * static_cast<double>(entries)) %
                static_cast<entry_t>(entries);
        lists.resize(static_cast<std::size_t>(num_lists));
        for (idx_t p = 0; p < num_points; ++p)
            lists[static_cast<std::size_t>(
                      rng.uniform() * num_lists) %
                  static_cast<std::size_t>(num_lists)]
                .push_back(p);
        interleaved.build(lists, codes, entries);
        lut = FloatMatrix(subspaces, entries);
        for (int s = 0; s < subspaces; ++s)
            for (int e = 0; e < entries; ++e)
                lut.at(s, e) = rng.uniform(0.0f, 4.0f);
    }
};

TEST(FastScan, InterleavedLayoutMatchesRowMajorCodes)
{
    ScanFixture fx(6, 16, 517, 7, 21);
    ASSERT_TRUE(fx.interleaved.built());
    ASSERT_TRUE(fx.interleaved.packed4());
    for (std::size_t c = 0; c < fx.lists.size(); ++c) {
        const auto &list = fx.lists[c];
        const auto cl = static_cast<cluster_t>(c);
        ASSERT_EQ(fx.interleaved.listSize(cl),
                  static_cast<idx_t>(list.size()));
        const entry_t *blocks = fx.interleaved.listBlocks(cl);
        const std::uint8_t *packed = fx.interleaved.listPacked(cl);
        for (std::size_t i = 0; i < list.size(); ++i) {
            const entry_t *row = fx.codes.row(list[i]);
            const std::size_t b = i / 32, j = i % 32;
            for (int s = 0; s < fx.subspaces; ++s) {
                const std::size_t ss = static_cast<std::size_t>(s);
                EXPECT_EQ(
                    blocks[(b * static_cast<std::size_t>(
                                    fx.subspaces) +
                            ss) *
                               32 +
                           j],
                    row[s]);
                const std::uint8_t byte =
                    packed[(b * static_cast<std::size_t>(
                                    fx.subspaces) +
                            ss) *
                               16 +
                           (j & 15)];
                const entry_t nib =
                    j < 16 ? byte & 0x0F : byte >> 4;
                EXPECT_EQ(nib, row[s]);
            }
        }
    }
}

TEST(FastScan, InterleavedScanBitwiseEqualsLegacyGatherEverywhere)
{
    // entries > 16 as well, so the non-packed layout is covered.
    for (int entries : {16, 64}) {
        ScanFixture fx(5, entries, 203, 3, 37);
        const auto &scalar = simd::table(simd::Level::kScalar);
        const float base = 0.375f;
        for (std::size_t c = 0; c < fx.lists.size(); ++c) {
            const auto &list = fx.lists[c];
            if (list.empty())
                continue;
            std::vector<float> ref(list.size());
            scalar.adc_scan(fx.lut.data(), fx.lut.cols(), fx.subspaces,
                            fx.codes.codes.data(),
                            static_cast<std::size_t>(fx.subspaces),
                            list.data(), list.size(), base, ref.data());
            for (simd::Level level : supportedLevels()) {
                std::vector<float> got(list.size(), -1.0f);
                simd::table(level).adc_scan_interleaved(
                    fx.lut.data(), fx.lut.cols(), fx.subspaces,
                    fx.interleaved.listBlocks(
                        static_cast<cluster_t>(c)),
                    list.size(), base, got.data());
                for (std::size_t i = 0; i < list.size(); ++i)
                    ASSERT_EQ(ref[i], got[i])
                        << "entries=" << entries << " level="
                        << simd::levelName(level) << " list=" << c
                        << " i=" << i;
            }
        }
    }
}

TEST(FastScan, FastScanSumsBitwiseIdenticalAcrossTables)
{
    ScanFixture fx(7, 16, 333, 2, 53);
    QuantizedLut qlut;
    quantizeLut(fx.lut, fx.entries, qlut);
    ASSERT_EQ(qlut.subspaces, fx.subspaces);

    for (std::size_t c = 0; c < fx.lists.size(); ++c) {
        const auto &list = fx.lists[c];
        if (list.empty())
            continue;
        const std::uint8_t *packed =
            fx.interleaved.listPacked(static_cast<cluster_t>(c));

        // Naive reference straight from the row-major codes.
        std::vector<std::uint16_t> naive(list.size());
        for (std::size_t i = 0; i < list.size(); ++i) {
            const entry_t *row = fx.codes.row(list[i]);
            std::uint16_t acc = 0;
            for (int s = 0; s < fx.subspaces; ++s)
                acc = static_cast<std::uint16_t>(
                    acc +
                    qlut.table[static_cast<std::size_t>(s) * 16 +
                               row[s]]);
            naive[i] = acc;
        }

        for (simd::Level level : supportedLevels()) {
            std::vector<std::uint16_t> got(list.size(), 0xBEEF);
            simd::table(level).fastscan_pq4(packed, fx.subspaces,
                                            qlut.table.data(),
                                            list.size(), got.data());
            ASSERT_EQ(naive, got)
                << "level=" << simd::levelName(level) << " list=" << c;
        }

        // Reconstruction error bound: subspaces * scale / 2 plus FP
        // slack, against the float LUT scores of the same codes.
        for (std::size_t i = 0; i < list.size(); ++i) {
            const entry_t *row = fx.codes.row(list[i]);
            float exact = 0.0f;
            for (int s = 0; s < fx.subspaces; ++s)
                exact += fx.lut.at(s, row[s]);
            const float approx =
                qlut.bias +
                qlut.scale * static_cast<float>(naive[i]);
            const float bound =
                0.5f * static_cast<float>(fx.subspaces) * qlut.scale +
                1e-4f;
            EXPECT_NEAR(exact, approx, bound);
        }
    }
}

Dataset
fastScanDataset(idx_t num_points, idx_t num_queries)
{
    SyntheticSpec spec;
    spec.kind = DatasetKind::kDeepLike;
    spec.num_points = num_points;
    spec.num_queries = num_queries;
    spec.dim = 32;
    spec.seed = 4242;
    return makeDataset(spec);
}

std::vector<std::vector<idx_t>>
idsOf(const SearchResults &results)
{
    std::vector<std::vector<idx_t>> ids(results.size());
    for (std::size_t q = 0; q < results.size(); ++q)
        for (const auto &nb : results[q])
            ids[q].push_back(nb.id);
    return ids;
}

IvfPqIndex::Params
pq4Params(bool use_interleaved)
{
    IvfPqIndex::Params params;
    params.clusters = 16;
    params.pq_subspaces = 16;
    params.pq_entries = 16; // PQ4: fast-scan eligible
    params.nprobs = 4;
    params.use_interleaved = use_interleaved;
    return params;
}

TEST(FastScan, InterleavedIndexIdsMatchLegacyGatherUnderScalar)
{
    LevelGuard guard;
    const auto ds = fastScanDataset(600, 20);
    IvfPqIndex legacy(ds.metric, ds.base.view(), pq4Params(false));
    IvfPqIndex inter(ds.metric, ds.base.view(), pq4Params(true));

    // Under the scalar table the interleaved index takes the float
    // streaming scan, which is bitwise identical to the gather path:
    // same ids, same scores.
    ASSERT_TRUE(simd::setLevel(simd::Level::kScalar));
    const auto legacy_res = legacy.search(ds.queries.view(), 10);
    const auto inter_res = inter.search(ds.queries.view(), 10);
    ASSERT_EQ(legacy_res.size(), inter_res.size());
    for (std::size_t q = 0; q < legacy_res.size(); ++q)
        EXPECT_EQ(legacy_res[q], inter_res[q]) << "query " << q;
}

TEST(FastScan, QuantizedPathRecallParityAcrossTiers)
{
    if (!simd::supported(simd::Level::kAvx2))
        GTEST_SKIP() << "host has no AVX2; quantised path never taken";
    LevelGuard guard;
    // fig12-style operating point, shrunk: PQ4, nprobs covering a
    // recall plateau, R1@100 on a DEEP-like distribution. 1000
    // queries give the +-0.1% recall tolerance a 0.1% granularity.
    const auto ds = fastScanDataset(4000, 1000);
    const idx_t k = 100;
    const auto gt =
        computeGroundTruth(ds.metric, ds.base.view(), ds.queries.view(),
                           1);
    IvfPqIndex index(ds.metric, ds.base.view(), pq4Params(true));

    ASSERT_TRUE(simd::setLevel(simd::Level::kScalar));
    const double recall_float =
        recall1AtK(gt, index.search(ds.queries.view(), k));
    for (simd::Level level : supportedLevels()) {
        if (level == simd::Level::kScalar)
            continue;
        ASSERT_TRUE(simd::setLevel(level));
        const double recall_quant =
            recall1AtK(gt, index.search(ds.queries.view(), k));
        EXPECT_NEAR(recall_quant, recall_float, 0.001)
            << "level=" << simd::levelName(level);
    }
}

TEST(FastScan, QuantizedBlockPrefilterKeepsTopKIntact)
{
    if (!simd::supported(simd::Level::kAvx2))
        GTEST_SKIP() << "host has no AVX2; quantised path never taken";
    LevelGuard guard;
    // The block pre-filter may only skip blocks that cannot beat the
    // heap minimum; the returned top-k must equal a full rescoring of
    // the quantised sums. Verify via self-consistency: k=1 results
    // must appear in the k=32 results' head.
    const auto ds = fastScanDataset(1500, 25);
    IvfPqIndex index(ds.metric, ds.base.view(), pq4Params(true));
    ASSERT_TRUE(simd::setLevel(simd::bestSupported()));
    const auto wide = idsOf(index.search(ds.queries.view(), 32));
    const auto narrow = idsOf(index.search(ds.queries.view(), 1));
    for (std::size_t q = 0; q < narrow.size(); ++q) {
        ASSERT_FALSE(narrow[q].empty());
        EXPECT_EQ(narrow[q][0], wide[q][0]) << "query " << q;
    }
}

} // namespace
} // namespace juno
