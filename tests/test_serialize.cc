/** @file Tests for binary serialization and index persistence. */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/serialize.h"
#include "core/juno_index.h"
#include "dataset/synthetic.h"
#include "registry/index_factory.h"

namespace juno {
namespace {

std::string
tempPath(const std::string &name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

constexpr char kMagic[8] = {'T', 'E', 'S', 'T', 'M', 'A', 'G', 'C'};

TEST(Serialize, PodAndVectorRoundTrip)
{
    const auto path = tempPath("pods.bin");
    {
        BinaryWriter writer(path, kMagic, 3);
        writer.writePod<std::int32_t>(-7);
        writer.writePod<double>(2.5);
        writer.writeVector(std::vector<float>{1.0f, 2.0f});
        writer.writeString("hello");
    }
    BinaryReader reader(path, kMagic, 3);
    EXPECT_EQ(reader.readPod<std::int32_t>(), -7);
    EXPECT_DOUBLE_EQ(reader.readPod<double>(), 2.5);
    const auto vec = reader.readVector<float>();
    ASSERT_EQ(vec.size(), 2u);
    EXPECT_FLOAT_EQ(vec[1], 2.0f);
    EXPECT_EQ(reader.readString(), "hello");
    std::remove(path.c_str());
}

TEST(Serialize, MatrixRoundTrip)
{
    const auto path = tempPath("matrix.bin");
    FloatMatrix m(3, 4);
    for (idx_t r = 0; r < 3; ++r)
        for (idx_t c = 0; c < 4; ++c)
            m.at(r, c) = static_cast<float>(r * 4 + c);
    {
        BinaryWriter writer(path, kMagic, 1);
        writer.writeMatrix(m.view());
    }
    BinaryReader reader(path, kMagic, 1);
    const auto back = reader.readMatrix();
    ASSERT_EQ(back.rows(), 3);
    ASSERT_EQ(back.cols(), 4);
    EXPECT_FLOAT_EQ(back.at(2, 3), 11.0f);
    std::remove(path.c_str());
}

TEST(Serialize, BadMagicRejected)
{
    const auto path = tempPath("badmagic.bin");
    {
        BinaryWriter writer(path, kMagic, 1);
        writer.writePod<int>(1);
    }
    constexpr char other[8] = {'O', 'T', 'H', 'E', 'R', 'M', 'G', 'C'};
    EXPECT_THROW(BinaryReader(path, other, 1), ConfigError);
    std::remove(path.c_str());
}

TEST(Serialize, WrongVersionRejected)
{
    const auto path = tempPath("badver.bin");
    { BinaryWriter writer(path, kMagic, 1); }
    EXPECT_THROW(BinaryReader(path, kMagic, 2), ConfigError);
    std::remove(path.c_str());
}

TEST(Serialize, TruncationDetected)
{
    const auto path = tempPath("trunc.bin");
    {
        BinaryWriter writer(path, kMagic, 1);
        writer.writePod<std::uint64_t>(1000); // claims 1000 elements
    }
    BinaryReader reader(path, kMagic, 1);
    EXPECT_THROW(reader.readVector<double>(), ConfigError);
    std::remove(path.c_str());
}

TEST(Serialize, MissingFileRejected)
{
    EXPECT_THROW(BinaryReader("/no/such/file.bin", kMagic, 1),
                 ConfigError);
}

TEST(Serialize, EmptyContainersRoundTrip)
{
    // Empty vectors/strings/matrices must round-trip without ever
    // handing a null pointer to the underlying stream.
    BufferWriter writer;
    writer.writeVector(std::vector<float>{});
    writer.writeString("");
    writer.writeMatrix(FloatMatrixView());
    writer.writeVector(std::vector<int>{5});

    BoundedMemReader reader(writer.buffer().data(),
                            writer.buffer().size(), "buffer");
    EXPECT_TRUE(reader.readVector<float>().empty());
    EXPECT_EQ(reader.readString(), "");
    const auto m = reader.readMatrix();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(reader.readVector<int>().at(0), 5);
    EXPECT_EQ(reader.remaining(), 0u);
}

TEST(Serialize, ForgedHugeCountsRejectedWithoutAllocating)
{
    // A forged 2^61 element count must fail the sanity bound before
    // any allocation — including when count * sizeof(T) would wrap.
    for (const std::uint64_t count :
         {std::uint64_t{1} << 61, ~std::uint64_t{0},
          (std::uint64_t{16} << 30) + 1}) {
        BufferWriter writer;
        writer.writePod<std::uint64_t>(count);
        BoundedMemReader vec_reader(writer.buffer().data(),
                                    writer.buffer().size(), "buffer");
        EXPECT_THROW(vec_reader.readVector<double>(), ConfigError);
        BoundedMemReader str_reader(writer.buffer().data(),
                                    writer.buffer().size(), "buffer");
        EXPECT_THROW(str_reader.readString(), ConfigError);
    }
}

TEST(Serialize, TruncatedMemWindowRejected)
{
    BufferWriter writer;
    writer.writeVector(std::vector<double>{1.0, 2.0, 3.0});
    // Cut the window mid-payload: the reader must throw, not zero-fill.
    BoundedMemReader reader(writer.buffer().data(),
                            writer.buffer().size() - 5, "buffer");
    EXPECT_THROW(reader.readVector<double>(), ConfigError);
}

class JunoIndexPersistence : public ::testing::Test {
  protected:
    static Dataset
    makeData()
    {
        SyntheticSpec spec;
        spec.kind = DatasetKind::kDeepLike;
        spec.num_points = 1200;
        spec.num_queries = 10;
        spec.dim = 12;
        spec.components = 10;
        spec.seed = 404;
        return makeDataset(spec);
    }

    static JunoParams
    makeParams()
    {
        JunoParams params = junoPresetM();
        params.clusters = 16;
        params.pq_entries = 32;
        params.nprobs = 6;
        params.threshold_scale = 0.9;
        params.density_grid = 30;
        params.policy.train_samples = 60;
        params.policy.ref_samples = 800;
        params.policy.contain_topk = 40;
        return params;
    }
};

TEST_F(JunoIndexPersistence, SaveLoadRoundTripResults)
{
    const auto ds = makeData();
    JunoIndex original(Metric::kL2, ds.base.view(), makeParams());
    const auto path = tempPath("juno_index.bin");
    original.save(path);

    auto loaded = JunoIndex::load(path);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->metric(), original.metric());
    EXPECT_EQ(loaded->size(), original.size());
    EXPECT_EQ(loaded->name(), original.name());
    EXPECT_EQ(loaded->params().nprobs, original.params().nprobs);
    EXPECT_EQ(loaded->params().mode, original.params().mode);

    const auto orig_results = original.search(ds.queries.view(), 20);
    const auto load_results = loaded->search(ds.queries.view(), 20);
    EXPECT_EQ(orig_results, load_results);
    std::remove(path.c_str());
}

TEST_F(JunoIndexPersistence, LoadedIndexAcceptsKnobChanges)
{
    const auto ds = makeData();
    JunoIndex original(Metric::kL2, ds.base.view(), makeParams());
    const auto path = tempPath("juno_index2.bin");
    original.save(path);
    auto loaded = JunoIndex::load(path);

    loaded->setSearchMode(SearchMode::kExactDistance);
    loaded->setNprobs(12);
    loaded->setThresholdScale(1.0);
    const auto results = loaded->search(ds.queries.view(), 20);
    EXPECT_EQ(results.size(), 10u);
    for (const auto &row : results)
        EXPECT_FALSE(row.empty());
    std::remove(path.c_str());
}

TEST_F(JunoIndexPersistence, IpIndexRoundTrips)
{
    SyntheticSpec spec;
    spec.kind = DatasetKind::kTtiLike;
    spec.num_points = 1000;
    spec.num_queries = 6;
    spec.dim = 12;
    spec.seed = 405;
    const auto ds = makeDataset(spec);

    auto params = makeParams();
    params.mode = SearchMode::kExactDistance;
    JunoIndex original(Metric::kInnerProduct, ds.base.view(), params);
    const auto path = tempPath("juno_index_ip.bin");
    original.save(path);
    auto loaded = JunoIndex::load(path);
    EXPECT_EQ(loaded->metric(), Metric::kInnerProduct);
    EXPECT_EQ(original.search(ds.queries.view(), 10),
              loaded->search(ds.queries.view(), 10));
    std::remove(path.c_str());
}

TEST_F(JunoIndexPersistence, LegacyFormatLoadsThroughShim)
{
    const auto ds = makeData();
    JunoIndex original(Metric::kL2, ds.base.view(), makeParams());
    const auto path = tempPath("juno_legacy.bin");
    // Hand-write the pre-container "JUNOIDX1" stream out of the
    // index's public components, exactly as the old save() laid it
    // out, so the migration shim has a real legacy file to chew on.
    {
        constexpr char magic[8] = {'J', 'U', 'N', 'O', 'I', 'D', 'X', '1'};
        BinaryWriter writer(path, magic, 1);
        const auto &p = original.params();
        writer.writePod<std::int32_t>(0); // L2
        writer.writePod<std::int64_t>(original.size());
        writer.writePod<std::int64_t>(original.dim());
        writer.writePod<std::int32_t>(p.clusters);
        writer.writePod<std::int32_t>(p.pq_entries);
        writer.writePod<std::int64_t>(p.nprobs);
        writer.writePod<std::int32_t>(
            static_cast<std::int32_t>(p.mode));
        writer.writePod(p.threshold_scale);
        writer.writePod<std::int32_t>(
            static_cast<std::int32_t>(p.threshold_mode));
        writer.writePod(p.miss_penalty);
        writer.writePod<std::uint8_t>(p.use_rt_core ? 1 : 0);
        writer.writePod<std::int32_t>(p.density_grid);
        writer.writePod(p.scene.gate_radius);
        writer.writePod(p.scene.max_gate_fraction);
        original.ivf().save(writer);
        original.pq().save(writer);
        writer.writePod<std::int64_t>(original.codes().num_points);
        writer.writePod<std::int32_t>(original.codes().num_subspaces);
        writer.writeArray(original.codes().data(),
                          original.codes().count());
        original.densityMap().save(writer);
        original.thresholdPolicy().save(writer);
    }

    auto loaded = JunoIndex::load(path);
    EXPECT_EQ(original.search(ds.queries.view(), 20),
              loaded->search(ds.queries.view(), 20));
    // openIndex() routes legacy files through the same shim.
    auto via_factory = openIndex(path);
    EXPECT_EQ(original.search(ds.queries.view(), 20),
              via_factory->search(ds.queries.view(), 20));
    std::remove(path.c_str());
}

TEST_F(JunoIndexPersistence, CorruptFileRejected)
{
    const auto path = tempPath("corrupt_index.bin");
    {
        constexpr char magic[8] = {'J', 'U', 'N', 'O', 'I', 'D', 'X', '1'};
        BinaryWriter writer(path, magic, 1);
        writer.writePod<std::int32_t>(0); // metric, then EOF
    }
    EXPECT_THROW(JunoIndex::load(path), ConfigError);
    std::remove(path.c_str());
}

} // namespace
} // namespace juno
